package vm

import (
	"errors"
	"testing"

	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/solver"
)

func build(t *testing.T, f func(b *isa.Builder)) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()
	f(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog
}

// runMain builds a program, runs its "main" function on a fresh state, and
// returns the state.
func runMain(t *testing.T, h Hooks, f func(b *isa.Builder)) *State {
	t.Helper()
	prog := build(t, f)
	ctx := NewContext()
	s := NewState(ctx, prog, 1)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(0, 0, h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return s
}

func constReg(t *testing.T, s *State, r isa.Reg) uint64 {
	t.Helper()
	v := s.Reg(r)
	if !v.IsConst() {
		t.Fatalf("r%d is symbolic: %v", r, v)
	}
	return v.ConstVal()
}

func TestConcreteArithmetic(t *testing.T) {
	s := runMain(t, NopHooks{}, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 100)
		f.MovI(isa.R2, 7)
		f.Add(isa.R3, isa.R1, isa.R2)
		f.Mul(isa.R4, isa.R3, isa.R2)
		f.URem(isa.R5, isa.R4, isa.R1)
		f.SubI(isa.R6, isa.R5, 4)
		f.Ret()
	})
	if got := constReg(t, s, isa.R3); got != 107 {
		t.Errorf("r3 = %d, want 107", got)
	}
	if got := constReg(t, s, isa.R4); got != 749 {
		t.Errorf("r4 = %d, want 749", got)
	}
	if got := constReg(t, s, isa.R5); got != 49 {
		t.Errorf("r5 = %d, want 49", got)
	}
	if got := constReg(t, s, isa.R6); got != 45 {
		t.Errorf("r6 = %d, want 45", got)
	}
	if s.Status() != StatusIdle {
		t.Errorf("status = %v, want idle", s.Status())
	}
}

func TestLoopExecution(t *testing.T) {
	// Sum 1..10 with a concrete loop.
	s := runMain(t, NopHooks{}, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 10) // counter
		f.MovI(isa.R2, 0)  // acc
		f.Label("loop")
		f.Add(isa.R2, isa.R2, isa.R1)
		f.SubI(isa.R1, isa.R1, 1)
		f.BrNZ(isa.R1, "loop")
		f.Ret()
	})
	if got := constReg(t, s, isa.R2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	s := runMain(t, NopHooks{}, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 0x1000)
		f.MovI(isa.R2, 1234)
		f.Store(isa.R1, 5, isa.R2)
		f.Load(isa.R3, isa.R1, 5)
		f.Load(isa.R4, isa.R1, 6) // untouched: reads 0
		f.Ret()
	})
	if got := constReg(t, s, isa.R3); got != 1234 {
		t.Errorf("loaded %d, want 1234", got)
	}
	if got := constReg(t, s, isa.R4); got != 0 {
		t.Errorf("untouched word = %d, want 0", got)
	}
}

func TestCallReturn(t *testing.T) {
	s := runMain(t, NopHooks{}, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R0, 20)
		f.Call("double")
		f.Call("double")
		f.Ret()
		d := b.Func("double")
		d.Add(isa.R0, isa.R0, isa.R0)
		d.Ret()
	})
	if got := constReg(t, s, isa.R0); got != 80 {
		t.Errorf("r0 = %d, want 80", got)
	}
}

func TestNestedCalls(t *testing.T) {
	s := runMain(t, NopHooks{}, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R0, 3)
		f.Call("outer")
		f.Ret()
		o := b.Func("outer")
		o.Call("inner")
		o.AddI(isa.R0, isa.R0, 100)
		o.Ret()
		i := b.Func("inner")
		i.MulI(isa.R0, isa.R0, 10)
		i.Ret()
	})
	if got := constReg(t, s, isa.R0); got != 130 {
		t.Errorf("r0 = %d, want 130", got)
	}
}

type forkCollector struct {
	NopHooks
	siblings   []*State
	violations []*Violation
}

func (c *forkCollector) OnFork(_, sib *State)               { c.siblings = append(c.siblings, sib) }
func (c *forkCollector) OnViolation(_ *State, v *Violation) { c.violations = append(c.violations, v) }

func TestSymbolicBranchForks(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "x", 32)
		f.UltI(isa.R2, isa.R1, 50)
		f.BrNZ(isa.R2, "small")
		f.MovI(isa.R3, 2) // x >= 50
		f.Ret()
		f.Label("small")
		f.MovI(isa.R3, 1) // x < 50
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 1)
	s.StartCall(prog.FuncIndex("main"))
	h := &forkCollector{}
	if err := s.Run(0, 0, h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.siblings) != 1 {
		t.Fatalf("forks = %d, want 1", len(h.siblings))
	}
	sib := h.siblings[0]
	if err := sib.Run(0, 0, h); err != nil {
		t.Fatalf("sibling Run: %v", err)
	}
	// Original takes the true branch (x < 50), sibling the false branch.
	if got := constReg(t, s, isa.R3); got != 1 {
		t.Errorf("original r3 = %d, want 1", got)
	}
	if got := constReg(t, sib, isa.R3); got != 2 {
		t.Errorf("sibling r3 = %d, want 2", got)
	}
	if len(s.PathCond()) != 1 || len(sib.PathCond()) != 1 {
		t.Errorf("path conditions: orig %d, sib %d constraints; want 1 each",
			len(s.PathCond()), len(sib.PathCond()))
	}
	// The two path conditions must be mutually exclusive.
	both := append(append([]*expr.Expr{}, s.PathCond()...), sib.PathCond()...)
	ok, err := ctx.Solver.Feasible(both)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("original and sibling path conditions are simultaneously satisfiable")
	}
}

func TestInfeasibleBranchDoesNotFork(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "x", 8) // 0..255 zero-extended
		f.UltI(isa.R2, isa.R1, 1000)
		f.BrNZ(isa.R2, "always")
		f.MovI(isa.R3, 99) // unreachable
		f.Ret()
		f.Label("always")
		f.MovI(isa.R3, 1)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 1)
	s.StartCall(prog.FuncIndex("main"))
	h := &forkCollector{}
	if err := s.Run(0, 0, h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.siblings) != 0 {
		t.Errorf("infeasible branch forked %d siblings", len(h.siblings))
	}
	if got := constReg(t, s, isa.R3); got != 1 {
		t.Errorf("r3 = %d, want 1", got)
	}
	if len(s.PathCond()) != 0 {
		t.Errorf("implied branch added %d constraints; want 0", len(s.PathCond()))
	}
}

func TestAssertViolation(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "x", 32)
		f.NeI(isa.R2, isa.R1, 7)
		f.Assert(isa.R2, "x must not be 7")
		f.MovI(isa.R3, 1)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 3)
	s.StartCall(prog.FuncIndex("main"))
	h := &forkCollector{}
	if err := s.Run(42, 0, h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(h.violations))
	}
	v := h.violations[0]
	if v.Msg != "x must not be 7" || v.Node != 3 || v.Time != 42 {
		t.Errorf("violation = %+v", v)
	}
	if v.Model["x_n3_0"] != 7 {
		t.Errorf("witness model = %v, want x_n3_0=7", v.Model)
	}
	// Execution continues on the true side.
	if got := constReg(t, s, isa.R3); got != 1 {
		t.Errorf("r3 = %d, want 1 (execution should continue)", got)
	}
}

func TestAssertAlwaysTrueIsFree(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 5)
		f.Assert(isa.R1, "concrete true")
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	h := &forkCollector{}
	if err := s.Run(0, 0, h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.violations) != 0 {
		t.Error("concrete-true assertion reported a violation")
	}
	if len(s.PathCond()) != 0 {
		t.Error("concrete-true assertion added constraints")
	}
}

func TestAssumeKillsInfeasible(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "x", 8)
		f.UltI(isa.R2, isa.R1, 10)
		f.Assume(isa.R2)
		f.UltI(isa.R3, isa.R1, 5)
		f.Not(isa.R4, isa.R3) // careful: Not is bitwise; use Eq against 0 instead
		f.EqI(isa.R4, isa.R3, 0)
		f.Assume(isa.R4) // x >= 5
		f.UltI(isa.R5, isa.R1, 3)
		f.Assume(isa.R5) // contradiction with x >= 5
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(0, 0, NopHooks{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Status() != StatusDead {
		t.Errorf("status = %v, want dead after contradictory assume", s.Status())
	}
}

func TestHalt(t *testing.T) {
	s := runMain(t, NopHooks{}, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 1)
		f.Halt()
	})
	if s.Status() != StatusHalted {
		t.Errorf("status = %v, want halted", s.Status())
	}
	if _, ok := s.NextEventTime(); ok {
		t.Error("halted state still reports pending events")
	}
}

func TestStepBudget(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Label("spin")
		f.Jmp("spin")
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	err := s.Run(0, 1000, NopHooks{})
	if !errors.Is(err, ErrStepBudget) {
		t.Errorf("err = %v, want ErrStepBudget", err)
	}
	if s.Status() != StatusDead {
		t.Errorf("status = %v, want dead", s.Status())
	}
}

func TestSymbolicAddressKills(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "p", 32)
		f.Load(isa.R2, isa.R1, 0)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(0, 0, NopHooks{}); err == nil {
		t.Error("symbolic load address did not error")
	}
	if s.Status() != StatusDead {
		t.Errorf("status = %v, want dead", s.Status())
	}
}

func TestNodeIDAndTime(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.NodeID(isa.R1)
		f.Time(isa.R2)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 17)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(99, 0, NopHooks{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := constReg(t, s, isa.R1); got != 17 {
		t.Errorf("nodeid = %d, want 17", got)
	}
	if got := constReg(t, s, isa.R2); got != 99 {
		t.Errorf("time = %d, want 99", got)
	}
}

type sendCollector struct {
	NopHooks
	dsts     []uint32
	payloads [][]*expr.Expr
}

func (c *sendCollector) OnSend(_ *State, dst uint32, payload []*expr.Expr) {
	c.dsts = append(c.dsts, dst)
	c.payloads = append(c.payloads, payload)
}

func TestSend(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 0x100) // buffer
		f.MovI(isa.R2, 11)
		f.Store(isa.R1, 0, isa.R2)
		f.MovI(isa.R2, 22)
		f.Store(isa.R1, 1, isa.R2)
		f.MovI(isa.R3, 5) // destination node
		f.Send(isa.R3, isa.R1, 2)
		f.Send(isa.R3, isa.R1, 2)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 1)
	s.StartCall(prog.FuncIndex("main"))
	h := &sendCollector{}
	if err := s.Run(7, 0, h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.dsts) != 2 || h.dsts[0] != 5 {
		t.Fatalf("sends = %v, want two to node 5", h.dsts)
	}
	if len(h.payloads[0]) != 2 ||
		h.payloads[0][0].ConstVal() != 11 || h.payloads[0][1].ConstVal() != 22 {
		t.Errorf("payload = %v", h.payloads[0])
	}
	// History recording is the delivery layer's job (a broadcast becomes
	// one history entry per neighbour); the raw VM records nothing.
	if hist := s.History(); len(hist) != 0 {
		t.Errorf("history = %+v, want empty before engine recording", hist)
	}
	seq := s.RecordSend(5, 7, 0x1)
	if seq != 0 {
		t.Errorf("first RecordSend seq = %d, want 0", seq)
	}
	if seq := s.RecordSend(5, 8, 0x2); seq != 1 {
		t.Errorf("second RecordSend seq = %d, want 1", seq)
	}
}

func TestTimerSchedulesEvent(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 100) // delay
		f.MovI(isa.R2, 55)  // arg
		f.Timer("tick", isa.R1, isa.R2)
		f.Ret()
		tick := b.Func("tick")
		tick.Mov(isa.R5, isa.R0)
		tick.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 1)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(50, 0, NopHooks{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tm, ok := s.NextEventTime()
	if !ok || tm != 150 {
		t.Fatalf("NextEventTime = (%d,%v), want (150,true)", tm, ok)
	}
	ev := s.BeginEvent(0x8000)
	if ev.Kind != EventTimer {
		t.Fatalf("event kind = %v, want timer", ev.Kind)
	}
	if err := s.Run(ev.Time, 0, NopHooks{}); err != nil {
		t.Fatalf("Run tick: %v", err)
	}
	if got := constReg(t, s, isa.R5); got != 55 {
		t.Errorf("tick arg = %d, want 55", got)
	}
}

func TestBeginEventRecv(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("on_recv")
		f.Load(isa.R3, isa.R1, 0) // first payload word
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 2)
	payload := []*expr.Expr{ctx.Exprs.Const(77, WordBits)}
	s.PushEvent(Event{Time: 10, Kind: EventRecv, Fn: 0, Src: 9, Data: payload})
	ev := s.BeginEvent(0x8000)
	if ev.Src != 9 {
		t.Fatalf("ev.Src = %d", ev.Src)
	}
	if err := s.Run(ev.Time, 0, NopHooks{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := constReg(t, s, isa.R0); got != 9 {
		t.Errorf("R0 (src) = %d, want 9", got)
	}
	if got := constReg(t, s, isa.R3); got != 77 {
		t.Errorf("payload word = %d, want 77", got)
	}
}

func TestEventOrdering(t *testing.T) {
	prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.PushEvent(Event{Time: 30, Kind: EventTimer, Fn: 0})
	s.PushEvent(Event{Time: 10, Kind: EventTimer, Fn: 0})
	s.PushEvent(Event{Time: 20, Kind: EventTimer, Fn: 0})
	s.PushEvent(Event{Time: 10, Kind: EventRecv, Fn: 0, Src: 1}) // FIFO tie
	var order []uint64
	var kinds []EventKind
	for {
		tm, ok := s.NextEventTime()
		if !ok {
			break
		}
		ev := s.BeginEvent(0x8000)
		order = append(order, tm)
		kinds = append(kinds, ev.Kind)
		if err := s.Run(tm, 0, NopHooks{}); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{10, 10, 20, 30}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event order = %v, want %v", order, want)
		}
	}
	if kinds[0] != EventTimer || kinds[1] != EventRecv {
		t.Errorf("same-time events not FIFO: %v", kinds)
	}
}

func TestForkIsolation(t *testing.T) {
	// After a fork, writes in one state must not leak into the other.
	prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	c1 := ctx.Exprs.Const(1, WordBits)
	c2 := ctx.Exprs.Const(2, WordBits)
	s.StoreWord(100, c1)
	sib := s.Fork()
	s.StoreWord(100, c2)
	s.StoreWord(500, c2)
	if got := sib.LoadWord(100); got != c1 {
		t.Errorf("sibling sees %v at 100, want 1", got)
	}
	if got := sib.LoadWord(500); !got.IsConst() || got.ConstVal() != 0 {
		t.Errorf("sibling sees %v at 500, want 0", got)
	}
	if got := s.LoadWord(100); got != c2 {
		t.Errorf("original sees %v at 100, want 2", got)
	}
	sib.StoreWord(200, c2)
	if got := s.LoadWord(200); !got.IsConst() || got.ConstVal() != 0 {
		t.Errorf("original sees sibling's write at 200: %v", got)
	}
}

func TestForkCopiesEvents(t *testing.T) {
	prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.PushEvent(Event{Time: 5, Kind: EventTimer, Fn: 0})
	sib := s.Fork()
	s.PushEvent(Event{Time: 3, Kind: EventTimer, Fn: 0})
	if n := sib.PendingEvents(); n != 1 {
		t.Errorf("sibling events = %d, want 1", n)
	}
	tm, _ := s.NextEventTime()
	if tm != 3 {
		t.Errorf("original next = %d, want 3", tm)
	}
	tm, _ = sib.NextEventTime()
	if tm != 5 {
		t.Errorf("sibling next = %d, want 5", tm)
	}
}

func TestFingerprintEquality(t *testing.T) {
	mk := func() *State {
		prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
		ctx := NewContext()
		s := NewState(ctx, prog, 1)
		s.StoreWord(10, ctx.Exprs.Const(7, WordBits))
		s.RecordSend(2, 100, 0xabc)
		return s
	}
	a, b := mk(), mk()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identically constructed states (different contexts) fingerprint differently")
	}
	b.StoreWord(11, b.ctx.Exprs.Const(9, WordBits))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("states with different memory fingerprint equal")
	}
}

func TestFingerprintForkedEqual(t *testing.T) {
	prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 1)
	s.StoreWord(10, ctx.Exprs.Const(7, WordBits))
	s.PushEvent(Event{Time: 5, Kind: EventTimer, Fn: 0})
	sib := s.Fork()
	if s.Fingerprint() != sib.Fingerprint() {
		t.Error("fork is not a fingerprint-duplicate of its original")
	}
	sib.RecordRecv(3, 6, 0, 0x1, 0x2)
	if s.Fingerprint() == sib.Fingerprint() {
		t.Error("history divergence not reflected in fingerprint")
	}
}

func TestFingerprintZeroStoreInvariant(t *testing.T) {
	prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
	ctx := NewContext()
	a := NewState(ctx, prog, 1)
	b := NewState(ctx, prog, 1)
	b.StoreWord(123, ctx.Exprs.Const(0, WordBits)) // dirty zero
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("storing an explicit zero changed the fingerprint")
	}
}

func TestForkOnFreshBool(t *testing.T) {
	prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 4)
	sib := s.ForkOnFreshBool("drop_n4_0")
	if len(s.PathCond()) != 1 || len(sib.PathCond()) != 1 {
		t.Fatal("both sides should gain exactly one constraint")
	}
	ok, err := ctx.Solver.Feasible(append(append([]*expr.Expr{}, s.PathCond()...), sib.PathCond()...))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("drop fork sides are simultaneously satisfiable")
	}
}

func TestExploreFigure1(t *testing.T) {
	// The paper's Figure 1 program:
	//   int x = symbolic_input();
	//   if (x == 0)  -> path 1
	//   if (x < 50)
	//     if (x > 10) -> path 2 else path 3
	//   else -> path 4
	// Four paths, four concrete test cases.
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "x", 32)
		f.EqI(isa.R2, isa.R1, 0)
		f.BrNZ(isa.R2, "path1")
		f.UltI(isa.R2, isa.R1, 50)
		f.BrZ(isa.R2, "path4")
		f.UltI(isa.R2, isa.R1, 11)
		f.BrNZ(isa.R2, "path3")
		f.Print("path", isa.R1) // path 2: 10 < x < 50
		f.MovI(isa.R3, 2)
		f.Ret()
		f.Label("path1")
		f.MovI(isa.R3, 1)
		f.Ret()
		f.Label("path3")
		f.MovI(isa.R3, 3)
		f.Ret()
		f.Label("path4")
		f.MovI(isa.R3, 4)
		f.Ret()
	})
	ctx := NewContext()
	report, err := Explore(ctx, prog, "main", ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(report.Paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(report.Paths))
	}
	// Each test case, replayed concretely, must land on the path that
	// produced it; collect the distinct path markers.
	markers := map[uint64]expr.Env{}
	for _, p := range report.Paths {
		marker := p.State.Reg(isa.R3).ConstVal()
		markers[marker] = p.TestCase
	}
	if len(markers) != 4 {
		t.Fatalf("distinct paths = %d, want 4 (markers %v)", len(markers), markers)
	}
	check := func(marker uint64, pred func(x uint64) bool) {
		x := markers[marker]["x_n0_0"]
		if !pred(x) {
			t.Errorf("path %d test case x=%d violates its region", marker, x)
		}
	}
	check(1, func(x uint64) bool { return x == 0 })
	check(2, func(x uint64) bool { return x > 10 && x < 50 })
	check(3, func(x uint64) bool { return x != 0 && x <= 10 })
	check(4, func(x uint64) bool { return x >= 50 })
}

func TestExploreMaxPaths(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		for i := 0; i < 6; i++ {
			f.Sym(isa.R1, "b", 1)
			f.BrNZ(isa.R1, "skip"+string(rune('0'+i)))
			f.Nop()
			f.Label("skip" + string(rune('0'+i)))
		}
		f.Ret()
	})
	ctx := NewContext()
	report, err := Explore(ctx, prog, "main", ExploreOptions{MaxPaths: 10})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(report.Paths) != 10 {
		t.Errorf("paths = %d, want 10 (capped)", len(report.Paths))
	}
}

func TestExploreAllPathsDistinct(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		for i := 0; i < 5; i++ {
			f.Sym(isa.R1, "b", 1)
			f.BrNZ(isa.R1, "skip"+string(rune('0'+i)))
			f.Nop()
			f.Label("skip" + string(rune('0'+i)))
		}
		f.Ret()
	})
	ctx := NewContext()
	report, err := Explore(ctx, prog, "main", ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(report.Paths) != 32 {
		t.Fatalf("paths = %d, want 2^5 = 32", len(report.Paths))
	}
	seen := map[uint64]bool{}
	for _, p := range report.Paths {
		fp := p.State.Fingerprint()
		if seen[fp] {
			t.Fatal("two explored paths have identical fingerprints")
		}
		seen[fp] = true
	}
}

func TestOverheadBytesGrows(t *testing.T) {
	prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	base := s.OverheadBytes()
	s.RecordSend(1, 0, 0)
	s.PushEvent(Event{Time: 1, Kind: EventTimer, Fn: 0})
	s.AddConstraint(ctx.Exprs.Var("c", 1))
	if s.OverheadBytes() <= base {
		t.Error("overhead accounting ignores history/events/constraints")
	}
}

func TestSharedPagesCountedOnce(t *testing.T) {
	prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StoreWord(0, ctx.Exprs.Const(1, WordBits))
	s.StoreWord(1000, ctx.Exprs.Const(2, WordBits))
	sib := s.Fork()
	ids := map[uint64]bool{}
	count := 0
	for _, st := range []*State{s, sib} {
		st.ForEachPage(func(id uint64, bytes int) {
			ids[id] = true
			count++
		})
	}
	if count != 4 {
		t.Fatalf("page visits = %d, want 4 (2 pages x 2 states)", count)
	}
	if len(ids) != 2 {
		t.Errorf("distinct page ids = %d, want 2 (pages shared after fork)", len(ids))
	}
	// Writing one page in the fork splits it.
	sib.StoreWord(0, ctx.Exprs.Const(3, WordBits))
	ids = map[uint64]bool{}
	for _, st := range []*State{s, sib} {
		st.ForEachPage(func(id uint64, bytes int) { ids[id] = true })
	}
	if len(ids) != 3 {
		t.Errorf("distinct page ids after COW split = %d, want 3", len(ids))
	}
}

// TestImpliedConcretization: once x == 7 is in the path condition, later
// branches over x must be decided concretely by the recorded binding —
// no fork, no new constraint, no solver query.
func TestImpliedConcretization(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "x", 8)
		f.EqI(isa.R2, isa.R1, 7)
		f.BrNZ(isa.R2, "pinned")
		f.MovI(isa.R3, 2) // x != 7
		f.Ret()
		f.Label("pinned")
		// x == 7 is bound: both comparisons below have known outcomes.
		f.UltI(isa.R4, isa.R1, 10) // 7 < 10: true
		f.BrZ(isa.R4, "dead")
		f.UltI(isa.R5, isa.R1, 3) // 7 < 3: false
		f.BrNZ(isa.R5, "dead")
		f.MovI(isa.R3, 1)
		f.Ret()
		f.Label("dead")
		f.MovI(isa.R3, 99)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 1)
	s.StartCall(prog.FuncIndex("main"))
	h := &forkCollector{}
	if err := s.Run(0, 0, h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.siblings) != 1 {
		t.Fatalf("forks = %d, want 1 (only the x==7 decision)", len(h.siblings))
	}
	if got := constReg(t, s, isa.R3); got != 1 {
		t.Errorf("r3 = %d, want 1 (concretized branches mispredicted)", got)
	}
	if got := len(s.PathCond()); got != 1 {
		t.Errorf("path condition has %d constraints, want 1 — implied branches must not add any", got)
	}
	if st := ctx.Solver.Stats(); st.ConcretizedReads < 2 {
		t.Errorf("ConcretizedReads = %d, want >= 2", st.ConcretizedReads)
	}
	// With concretization disabled the run is identical, minus the counter.
	ctx2 := NewContextWithSolver(solver.Options{DisableConcretization: true})
	s2 := NewState(ctx2, prog, 1)
	s2.StartCall(prog.FuncIndex("main"))
	h2 := &forkCollector{}
	if err := s2.Run(0, 0, h2); err != nil {
		t.Fatalf("Run (concretization off): %v", err)
	}
	if len(h2.siblings) != 1 || constReg(t, s2, isa.R3) != 1 {
		t.Fatalf("concretization-off run diverged: forks=%d r3=%v", len(h2.siblings), s2.Reg(isa.R3))
	}
	if st := ctx2.Solver.Stats(); st.ConcretizedReads != 0 {
		t.Errorf("DisableConcretization still concretized %d reads", st.ConcretizedReads)
	}
}
