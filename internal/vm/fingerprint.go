package vm

import "sort"

// Fingerprint returns a structural hash of the state's full configuration:
// program position, registers, memory, path condition, communication
// history, and pending events. Two states with equal fingerprints are
// duplicates in the paper's sense (§III-A: "two or more states with the
// same configuration (e.g. heap, stack, program counter, path constraints,
// and the communication history)").
//
// Fingerprints are deterministic across runs and across mapping algorithms
// (expression hashes are structural and variable names are derived from
// per-state counters), so exploded dscenario sets from COB, COW, and SDS
// runs can be compared directly.
func (s *State) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
		h ^= h >> 29
	}
	mix(uint64(s.node))
	mix(uint64(s.status))
	mix(uint64(int64(s.fn)))
	mix(uint64(int64(s.pc)))
	for _, fr := range s.frames {
		mix(uint64(fr.fn))
		mix(uint64(fr.pc))
	}
	for _, r := range s.regs {
		if r != nil {
			mix(r.Hash())
		} else {
			mix(0)
		}
	}
	mix(s.memoryHash())
	// The path condition is a set; XOR makes the digest order-independent.
	var pcHash uint64
	for _, c := range s.pathCond {
		pcHash ^= c.Hash()
	}
	mix(pcHash)
	for _, e := range s.hist {
		mix(uint64(e.Dir))
		mix(uint64(e.Peer))
		mix(e.Time)
		mix(uint64(e.Seq))
		mix(e.Payload)
		mix(e.SenderFP)
	}
	for _, ev := range s.events {
		mix(ev.Time)
		mix(uint64(ev.Kind))
		mix(uint64(int64(ev.Fn)))
		if ev.Arg != nil {
			mix(ev.Arg.Hash())
		}
		mix(uint64(ev.Src))
		for _, w := range ev.Data {
			mix(w.Hash())
		}
	}
	mix(uint64(s.sendSeq))
	mix(uint64(s.recvSeq))
	mix(uint64(s.symSeq))
	return h
}

// HistoryHash returns an order-sensitive digest of the state's
// communication history alone. States of the same node within one dstate
// must agree on it — the conflict-freedom requirement of paper §II-B.
func (s *State) HistoryHash() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, e := range s.hist {
		mix(uint64(e.Dir))
		mix(uint64(e.Peer))
		mix(e.Time)
		mix(uint64(e.Seq))
		mix(e.Payload)
		mix(e.SenderFP)
	}
	return h
}

func (s *State) memoryHash() uint64 {
	idxs := make([]uint32, 0, len(s.mem.pages))
	for idx := range s.mem.pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	h := uint64(14695981039346656037)
	for _, idx := range idxs {
		p := s.mem.pages[idx]
		ph := uint64(0)
		for wi, w := range p.words {
			if w == nil {
				continue
			}
			// Words explicitly stored as 0 hash like untouched words, so
			// layouts differing only in dirty-zero words match.
			if w.IsConst() && w.ConstVal() == 0 {
				continue
			}
			ph ^= (uint64(wi) + 0x9e3779b97f4a7c15) * 1099511628211
			ph ^= w.Hash() * 0x9e3779b97f4a7c15
		}
		// A page holding only zeros is indistinguishable from an absent
		// page.
		if ph == 0 {
			continue
		}
		h ^= uint64(idx)
		h *= 1099511628211
		h ^= ph
		h *= 1099511628211
	}
	return h
}
