// State merging, VM layer: the mechanics of fusing two sibling states of
// one node into a single merged representative ("rep") whose diverging
// values are ite(Δ, va, vb) expressions, and of reconstructing the exact
// member states later by substituting each member's side back through the
// rep's machine (expr.Substitute). The merge *policy* — which states to
// fuse, when to split — lives in internal/merge; this file only provides
// the state surgery and the execution intercepts.
//
// A rep executes its members' shared events once. Every branch decision on
// the rep is resolved purely structurally: the condition is substituted
// per member, and only a verdict that is the same constant for every
// member lets the rep continue. Anything else — a genuinely symbolic
// condition, member-dependent control flow, or an instruction whose
// effects escape the state (send, assert, a symbolic address or delay) —
// splits the rep back into its exact members first. Reps therefore never
// query the solver, never fork, and never speculate; their path condition
// (common prefix + disjunction of the member deltas) exists only for
// representation and snapshots.
package vm

import (
	"sde/internal/expr"
	"sde/internal/isa"
)

// MergeVerdict is the outcome of a merged-execution control decision.
type MergeVerdict uint8

// Merged-execution verdicts.
const (
	// MergeFoldTrue: the condition substitutes to constant true for every
	// member; the rep takes the true side without touching any path
	// condition (each member's own condition is structurally true, exactly
	// as in its unmerged run).
	MergeFoldTrue MergeVerdict = iota + 1
	// MergeFoldFalse: constant false for every member.
	MergeFoldFalse
	// MergeSplit: the members disagree (or the condition stays symbolic);
	// the manager has already reconstructed the members at the current
	// instruction and discarded the rep, which is no longer Running.
	MergeSplit
)

// MergeHooks receives merged-execution control decisions. Implemented by
// the merge manager (internal/merge); when unset, no state is ever marked
// as a merged rep and the intercepts below are dead code.
type MergeHooks interface {
	// MergedBranch resolves a conditional branch on a rep. FoldTrue and
	// FoldFalse mean every member agrees on that constant direction; on
	// MergeSplit the members have been re-materialized mid-event (they
	// re-execute the branch themselves) and the rep is discarded.
	MergedBranch(s *State, cond *expr.Expr) MergeVerdict
	// MergedCheck resolves an assume or assert condition on a rep:
	// MergeFoldTrue means the condition is constant true for every member
	// (the instruction is a no-op on each of them); any other outcome has
	// split the rep so the members handle the instruction individually
	// (solver queries, witness models, or deaths — per member, exactly as
	// unmerged).
	MergedCheck(s *State, cond *expr.Expr) MergeVerdict
	// MergedBarrier is called before an instruction a rep must never
	// execute (send, symbolic address/delay). It splits unconditionally;
	// afterwards s is no longer Running.
	MergedBarrier(s *State)
}

// SetMergeHooks installs the merge manager. Passing nil disables merged
// execution (no new reps can be marked; existing ones must be gone).
func (c *Context) SetMergeHooks(h MergeHooks) { c.merge = h }

// IsMergedRep reports whether this state is a live merged representative.
func (s *State) IsMergedRep() bool { return s.merged }

// MergeSiteKind classifies a divergence site between two mergeable states.
type MergeSiteKind uint8

// Divergence-site kinds.
const (
	MergeSiteReg    MergeSiteKind = iota + 1 // register Index
	MergeSiteMem                             // memory word Addr
	MergeSiteEvArg                           // pending event Index, timer argument
	MergeSiteEvData                          // pending event Index, payload word Word
	MergeSiteTrace                           // trace entry Index value
)

// MergeSite is one location where two otherwise identical states hold
// different symbolic values.
type MergeSite struct {
	Kind  MergeSiteKind
	Index int    // register, event, or trace index
	Word  int    // payload word within the event (MergeSiteEvData)
	Addr  uint32 // word address (MergeSiteMem)
	A, B  *expr.Expr
}

// MergeDiff is the bounded divergence set of a candidate pair.
type MergeDiff struct {
	Sites []MergeSite
}

// MergeClassHash buckets states that could possibly merge: everything a
// merge must find equal — program position, event-queue shape, counters,
// communication history, trace shape, register nil-mask — hashed into one
// key. Divergeable values (registers, memory, event payloads, trace
// values) are deliberately excluded.
func (s *State) MergeClassHash() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
		h ^= h >> 29
	}
	mix(uint64(s.node))
	mix(uint64(s.status))
	mix(uint64(int64(s.fn)))
	mix(uint64(int64(s.pc)))
	for _, fr := range s.frames {
		mix(uint64(fr.fn))
		mix(uint64(fr.pc))
	}
	var nilMask uint64
	for i, r := range s.regs {
		if r == nil {
			nilMask |= 1 << uint(i)
		}
	}
	mix(nilMask)
	mix(s.eventSeq)
	for _, ev := range s.events {
		mix(ev.Time)
		mix(uint64(ev.Kind))
		mix(uint64(int64(ev.Fn)))
		mix(uint64(ev.Src))
		mix(ev.seq)
		mix(uint64(len(ev.Data)))
		if ev.Arg == nil {
			mix(1)
		}
	}
	mix(uint64(s.sendSeq))
	mix(uint64(s.recvSeq))
	mix(uint64(s.symSeq))
	mix(uint64(len(s.hist)))
	mix(s.HistoryHash())
	mix(uint64(len(s.trace)))
	for _, te := range s.trace {
		mix(te.Time)
		for _, c := range te.Msg {
			mix(uint64(c))
		}
	}
	return h
}

// DiffMergeable checks whether a and b are structurally mergeable — same
// node, same lifecycle status (idle or halted), same program position,
// event-queue shape, counters, and communication history — and collects
// the bounded set of locations where their symbolic values differ. It
// returns (nil, false) when the states are not mergeable or diverge at
// more than maxSites locations. Memory words are compared with the same
// nil ≡ const-0 normalization the fingerprint uses, so layouts differing
// only in dirty-zero words do not produce sites.
func DiffMergeable(a, b *State, maxSites int) (*MergeDiff, bool) {
	if a == b || a.node != b.node || a.status != b.status || a.runErr != nil || b.runErr != nil {
		return nil, false
	}
	if a.status != StatusIdle && a.status != StatusHalted {
		return nil, false
	}
	if a.fn != b.fn || a.pc != b.pc || len(a.frames) != len(b.frames) {
		return nil, false
	}
	for i := range a.frames {
		if a.frames[i] != b.frames[i] {
			return nil, false
		}
	}
	if a.sendSeq != b.sendSeq || a.recvSeq != b.recvSeq || a.symSeq != b.symSeq {
		return nil, false
	}
	if a.eventSeq != b.eventSeq || len(a.events) != len(b.events) {
		return nil, false
	}
	if len(a.hist) != len(b.hist) || len(a.trace) != len(b.trace) {
		return nil, false
	}
	for i := range a.hist {
		if a.hist[i] != b.hist[i] {
			return nil, false
		}
	}
	d := &MergeDiff{}
	add := func(site MergeSite) bool {
		if len(d.Sites) >= maxSites {
			return false
		}
		d.Sites = append(d.Sites, site)
		return true
	}
	for i, ea := range a.events {
		eb := b.events[i]
		if ea.Time != eb.Time || ea.Kind != eb.Kind || ea.Fn != eb.Fn ||
			ea.Src != eb.Src || ea.seq != eb.seq || len(ea.Data) != len(eb.Data) {
			return nil, false
		}
		if (ea.Arg == nil) != (eb.Arg == nil) {
			return nil, false
		}
		if ea.Arg != eb.Arg {
			if !add(MergeSite{Kind: MergeSiteEvArg, Index: i, A: ea.Arg, B: eb.Arg}) {
				return nil, false
			}
		}
		for j := range ea.Data {
			if ea.Data[j] != eb.Data[j] {
				if !add(MergeSite{Kind: MergeSiteEvData, Index: i, Word: j, A: ea.Data[j], B: eb.Data[j]}) {
					return nil, false
				}
			}
		}
	}
	for i := range a.trace {
		ta, tb := &a.trace[i], &b.trace[i]
		if ta.Time != tb.Time || ta.Msg != tb.Msg || (ta.Val == nil) != (tb.Val == nil) {
			return nil, false
		}
		if ta.Val != tb.Val {
			if !add(MergeSite{Kind: MergeSiteTrace, Index: i, A: ta.Val, B: tb.Val}) {
				return nil, false
			}
		}
	}
	for i := range a.regs {
		ra, rb := a.regs[i], b.regs[i]
		// Register nil-ness is fingerprint-visible (a never-written
		// register hashes differently from an explicit zero), so it must
		// match exactly rather than be normalized away.
		if (ra == nil) != (rb == nil) {
			return nil, false
		}
		if ra != rb {
			if !add(MergeSite{Kind: MergeSiteReg, Index: i, A: ra, B: rb}) {
				return nil, false
			}
		}
	}
	if !diffMemory(a, b, d, maxSites) {
		return nil, false
	}
	if len(d.Sites) == 0 {
		// Identical machines: nothing to fuse, and no delta could ever
		// tell the members apart at split time. Leave exact duplicates to
		// the mapping algorithms.
		return nil, false
	}
	return d, true
}

// diffMemory walks the union of both states' COW pages. Pages shared by
// pointer are identical by construction; distinct pages are compared
// word-wise with nil ≡ const 0.
func diffMemory(a, b *State, d *MergeDiff, maxSites int) bool {
	zero := a.ctx.zeroWord
	norm := func(w *expr.Expr) *expr.Expr {
		if w == nil {
			return zero
		}
		return w
	}
	seen := make(map[uint32]struct{}, len(a.mem.pages))
	diffPage := func(idx uint32) bool {
		pa, pb := a.mem.pages[idx], b.mem.pages[idx]
		if pa == pb {
			return true
		}
		for wi := 0; wi < pageWords; wi++ {
			var wa, wb *expr.Expr
			if pa != nil {
				wa = pa.words[wi]
			}
			if pb != nil {
				wb = pb.words[wi]
			}
			na, nb := norm(wa), norm(wb)
			if na == nb {
				continue
			}
			if len(d.Sites) >= maxSites {
				return false
			}
			d.Sites = append(d.Sites, MergeSite{
				Kind: MergeSiteMem,
				Addr: idx<<pageShift | uint32(wi),
				A:    na,
				B:    nb,
			})
		}
		return true
	}
	for idx := range a.mem.pages {
		seen[idx] = struct{}{}
		if !diffPage(idx) {
			return false
		}
	}
	for idx := range b.mem.pages {
		if _, ok := seen[idx]; ok {
			continue
		}
		if !diffPage(idx) {
			return false
		}
	}
	return true
}

// FuseStates builds the merged representative of a and b: a copy of a
// whose divergence sites are replaced by ite(delta, va, vb) nodes, where
// delta is true exactly on a's side (the conjunction of a's path-condition
// suffix past the common prefix). The rep keeps a's id — a is always the
// smaller-id side, so the rep occupies a's scheduling slot. The returned
// substitution maps resolve each introduced ite node back to the matching
// member's arm; applying subA (subB) to any rep value through
// expr.Substitute reconstructs a's (b's) value pointer-identically.
//
// The rep's path condition must be installed separately by the caller via
// MergeSetPathCond (the policy layer computed delta from the members'
// path conditions and owns that representation).
func FuseStates(a, b *State, delta *expr.Expr, d *MergeDiff) (rep *State, subA, subB map[*expr.Expr]*expr.Expr) {
	rep = a.SpecFork()
	rep.id = a.id
	rep.merged = true
	eb := a.ctx.Exprs
	subA = make(map[*expr.Expr]*expr.Expr, len(d.Sites))
	subB = make(map[*expr.Expr]*expr.Expr, len(d.Sites))
	dataCopied := make(map[int]bool)
	for _, site := range d.Sites {
		ite := eb.Ite(delta, site.A, site.B)
		// A fold (delta constant or equal arms) cannot happen for a real
		// divergence site, but guard anyway: an ite that collapsed to one
		// arm cannot key a substitution.
		if ite != site.A && ite != site.B {
			subA[ite] = site.A
			subB[ite] = site.B
		}
		switch site.Kind {
		case MergeSiteReg:
			rep.regs[site.Index] = ite
		case MergeSiteMem:
			rep.mem.store(site.Addr, ite)
		case MergeSiteEvArg:
			rep.events[site.Index].Arg = ite
		case MergeSiteEvData:
			// SpecFork copies the event structs but shares their payload
			// slices with a; detach before mutating.
			if !dataCopied[site.Index] {
				ev := rep.events[site.Index]
				ev.Data = append([]*expr.Expr(nil), ev.Data...)
				dataCopied[site.Index] = true
			}
			rep.events[site.Index].Data[site.Word] = ite
		case MergeSiteTrace:
			rep.trace[site.Index].Val = ite
		}
	}
	return rep, subA, subB
}

// MergeSetPathCond installs the rep's path condition (common member prefix
// plus the disjoined deltas). Reps never query the solver, so this exists
// for representation, snapshots, and session re-warm on restore.
func (s *State) MergeSetPathCond(pc []*expr.Expr) {
	s.pathCond = pc
	s.rebuildBound()
}

// MarkMergedRep flags a checkpoint-restored state as a live merged rep.
func (s *State) MarkMergedRep() { s.merged = true }

// MergeFreeze dissolves a member's machine after it has been fused into a
// rep: memory pages are released and the value-bearing structures cleared,
// so the frozen member costs only its bookkeeping (path condition,
// history, solver session) while the rep carries the one shared machine.
// The member's path condition, history, and counters stay — they are
// frozen facts the split does not need to reconstruct. With no pending
// events the scheduler never picks a frozen member up.
func (s *State) MergeFreeze() {
	s.mem.release()
	for i := range s.regs {
		s.regs[i] = nil
	}
	s.events = nil
	s.trace = nil
	s.frames = nil
}

// MergeDiscard retires a rep whose members have been re-materialized (or
// absorbed into a larger rep). The state object is dead afterwards; a
// halted status makes any stale scheduler entry skip it.
func (s *State) MergeDiscard() {
	s.status = StatusHalted
	s.merged = false
	s.mem.release()
	s.events = nil
	s.trace = nil
	for i := range s.regs {
		s.regs[i] = nil
	}
}

// AdoptMergedMachine reconstructs this (frozen) member's machine from the
// rep by substituting the member's side through every value: registers,
// memory (pages the substitution leaves untouched are re-shared with the
// rep; changed pages are rebuilt), pending events, and the trace. Control
// position, status, and counters are copied from the rep; the member's
// own path condition, history, and solver session were never dissolved
// and remain in place. extraSteps is the member's share of instructions
// the rep executed on its behalf.
//
// Substitution rebuilds through the expression builder's smart
// constructors, so every reconstructed value is pointer-identical to what
// the member's own unmerged execution would have produced — fingerprints,
// future constraints, and test cases are bit-for-bit those of an unmerged
// run.
func (s *State) AdoptMergedMachine(rep *State, sub, memo map[*expr.Expr]*expr.Expr, extraSteps uint64) {
	eb := s.ctx.Exprs
	subst := func(e *expr.Expr) *expr.Expr {
		if e == nil {
			return nil
		}
		return eb.Substitute(e, sub, memo)
	}
	for i, r := range rep.regs {
		s.regs[i] = subst(r)
	}
	s.mem = newMemory()
	for idx, p := range rep.mem.pages {
		var words [pageWords]*expr.Expr
		changed := false
		for wi, w := range p.words {
			if w == nil {
				continue
			}
			nw := subst(w)
			words[wi] = nw
			if nw != w {
				changed = true
			}
		}
		if !changed {
			p.ref++
			s.mem.pages[idx] = p
			continue
		}
		np := &page{id: pageIDSeq.Add(1), ref: 1, words: words}
		s.mem.pages[idx] = np
	}
	s.frames = append([]frame(nil), rep.frames...)
	s.fn, s.pc = rep.fn, rep.pc
	s.status = rep.status
	s.runErr = rep.runErr
	s.events = make([]*Event, len(rep.events))
	for i, ev := range rep.events {
		cp := *ev
		cp.Arg = subst(ev.Arg)
		if len(ev.Data) > 0 {
			data := make([]*expr.Expr, len(ev.Data))
			for j, w := range ev.Data {
				data[j] = subst(w)
			}
			cp.Data = data
		}
		s.events[i] = &cp
	}
	s.eventSeq = rep.eventSeq
	s.trace = make([]TraceEntry, len(rep.trace))
	for i, te := range rep.trace {
		te.Val = subst(te.Val)
		s.trace[i] = te
	}
	s.sendSeq, s.recvSeq, s.symSeq = rep.sendSeq, rep.recvSeq, rep.symSeq
	s.steps += extraSteps
}

// mergedBarrierOp reports whether a rep must split before executing in:
// instructions whose effects escape the state (OpSend) or that need a
// concrete operand the rep may only hold as a member-dependent ite
// (addresses, timer delays). OpAssert and the branches are handled by
// their own fold-capable intercepts.
func (s *State) mergedBarrierOp(in *isa.Instr) bool {
	switch in.Op {
	case isa.OpSend:
		return true
	case isa.OpLoad, isa.OpStore:
		r := s.regs[in.Ra]
		return r != nil && !r.IsConst()
	case isa.OpTimer:
		r := s.regs[in.Ra]
		return r != nil && !r.IsConst()
	}
	return false
}
