package vm

import (
	"errors"
	"fmt"

	"sde/internal/expr"
	"sde/internal/isa"
)

// ErrNoBoot is returned when a program lacks the requested entry function.
var ErrNoBoot = errors.New("vm: program has no such entry function")

// ErrStepBudget is returned when one event handler exceeds the instruction
// budget, which almost always indicates an unbounded loop in node software.
var ErrStepBudget = errors.New("vm: event handler exceeded instruction budget")

// ErrAssertFails marks a state killed because an assertion cannot hold on
// any input reaching it. The violation itself is reported through
// Hooks.OnViolation before the state dies, so drivers typically do not
// report this error a second time.
var ErrAssertFails = errors.New("vm: assertion always fails")

// DefaultStepBudget bounds the instructions one event handler may execute.
const DefaultStepBudget = 1 << 20

// Hooks receives the side effects of symbolic execution that the engine
// (or the single-node explorer) must mediate.
type Hooks interface {
	// OnFork is called when the running state forks at a symbolic branch
	// or assertion; sibling is the newly created state, which is also
	// mid-event and must be driven to completion by the caller.
	OnFork(s, sibling *State)
	// OnSend is called when the running state transmits a packet.
	// dst is the destination node id (isa.BroadcastAddr = broadcast);
	// payload is the packet content. The callee owns delivery and
	// history recording — a broadcast is recorded as one send per
	// neighbour (paper footnote 1), which the VM cannot know.
	OnSend(s *State, dst uint32, payload []*expr.Expr)
	// OnViolation is called when an assertion can fail; model is a
	// concrete test case reaching the failure.
	OnViolation(s *State, v *Violation)
}

// NopHooks is a Hooks implementation that ignores everything; useful in
// tests of pure computation.
type NopHooks struct{}

// OnFork implements Hooks.
func (NopHooks) OnFork(_, _ *State) {}

// OnSend implements Hooks.
func (NopHooks) OnSend(*State, uint32, []*expr.Expr) {}

// OnViolation implements Hooks.
func (NopHooks) OnViolation(*State, *Violation) {}

// BeginEvent dequeues the state's earliest event and prepares the state to
// execute its handler: the clock is the event's time, handler arguments
// are loaded into registers, and received payloads are copied into the RX
// buffer region. It returns the event. The state must be idle.
func (s *State) BeginEvent(rxBufAddr uint32) *Event {
	if s.status != StatusIdle {
		panic("vm: BeginEvent on non-idle " + s.String())
	}
	ev := s.popEvent()
	s.fn = ev.Fn
	s.pc = 0
	s.frames = s.frames[:0]
	s.status = StatusRunning
	// Zero only the registers the handler may read before writing — the
	// compiled IR's interprocedural read-set (isa.FuncIR.LiveIn) — using
	// the context's cached zero word instead of taking the builder lock
	// per event. A register outside the read-set is unobservable to the
	// handler, so skipping its rewrite cannot change execution; the stale
	// value it keeps is a deterministic function of the state's own
	// history, so fingerprints stay stable and comparable across runs.
	// This is independent of the fast-path on/off switch (the IR is
	// always built), so compiled and interpreted runs see identical
	// register files.
	live := s.prog.IR().Funcs[ev.Fn].LiveIn
	zero := s.ctx.zeroWord
	for i := range s.regs {
		if live.Has(isa.Reg(i)) {
			s.regs[i] = zero
		}
	}
	switch ev.Kind {
	case EventTimer:
		if ev.Arg != nil {
			s.regs[isa.R0] = ev.Arg
		}
	case EventRecv:
		s.regs[isa.R0] = s.ctx.Exprs.Const(uint64(ev.Src), WordBits)
		s.regs[isa.R1] = s.ctx.Exprs.Const(uint64(rxBufAddr), WordBits)
		s.regs[isa.R2] = s.ctx.Exprs.Const(uint64(len(ev.Data)), WordBits)
		for i, w := range ev.Data {
			s.mem.store(rxBufAddr+uint32(i), w)
		}
	}
	return ev
}

// StartCall prepares the state to run fn with the given register
// arguments, outside any event. Used for boot entry and by the single-node
// explorer.
func (s *State) StartCall(fn int, args ...*expr.Expr) {
	s.fn = fn
	s.pc = 0
	s.frames = s.frames[:0]
	s.status = StatusRunning
	zero := s.ctx.zeroWord
	for i := range s.regs {
		s.regs[i] = zero
	}
	for i, a := range args {
		s.regs[i] = a
	}
}

// Run executes the state's current activation until the handler returns,
// the state halts or dies, or the instruction budget is exceeded. now is
// the virtual time exposed by OpTime and stamped on history entries;
// budget <= 0 selects DefaultStepBudget.
//
// Forked siblings reported via Hooks.OnFork are left mid-event
// (StatusRunning); the caller must Run them as well.
func (s *State) Run(now uint64, budget int, h Hooks) error {
	if budget <= 0 {
		budget = DefaultStepBudget
	}
	eb := s.ctx.Exprs
	var code *isa.ProgIR
	// Merged reps stay on the per-instruction interpreter: the fast path
	// commits whole blocks at once and would run straight through the
	// merged-execution intercepts below.
	if s.ctx.compile && !s.merged {
		code = s.prog.IR()
	}
	for i := 0; i < budget; i++ {
		if s.status != StatusRunning {
			return nil
		}
		f := s.prog.Func(s.fn)
		if s.pc >= len(f.Instrs) {
			s.Kill(fmt.Errorf("vm: pc %d out of range in %s", s.pc, f.Name))
			return s.runErr
		}
		// Compiled-IR fast path: at a concretizable block's leader with
		// all live-in registers concrete, execute the whole block on raw
		// uint64s (see fastpath.go) and skip the per-instruction loop.
		if code != nil {
			fir := &code.Funcs[s.fn]
			if bi := fir.BlockIndex(s.pc); bi >= 0 {
				if n := s.runFastBlock(f, fir, bi, budget-i, now); n > 0 {
					s.ctx.fastBlocks.Add(1)
					i += n - 1
					continue
				}
				s.ctx.slowBlocks.Add(1)
			}
		}
		in := &f.Instrs[s.pc]
		// Merged-execution barrier: a rep must not execute an instruction
		// whose effects escape the state or that needs a concrete operand
		// it may only hold as a member-dependent ite. Split back into the
		// exact members first — they re-execute this instruction
		// themselves, so it is gated before the step is counted.
		if s.merged && s.mergedBarrierOp(in) {
			s.ctx.merge.MergedBarrier(s)
			return nil
		}
		// Resolution barrier: an instruction whose effects escape the state
		// (a packet send, an assertion report) must not execute on an
		// unconfirmed path. Drain the speculative pipeline first; the state
		// comes back confirmed, rewound onto the false side, or dead.
		if s.ctx.spec != nil && (in.Op == isa.OpAssert || in.Op == isa.OpSend) {
			s.ctx.spec.OnSpecBarrier(s)
			if s.status != StatusRunning {
				return nil
			}
			if s.specRewound {
				s.ClearSpecRewound()
				continue
			}
		}
		s.steps++
		s.ctx.instrCount.Add(1)

		switch in.Op {
		case isa.OpNop:
			s.pc++

		case isa.OpMovI:
			s.regs[in.Rd] = eb.Const(uint64(in.Imm), WordBits)
			s.pc++

		case isa.OpMov:
			s.regs[in.Rd] = s.regs[in.Ra]
			s.pc++

		case isa.OpNot:
			s.regs[in.Rd] = eb.Not(s.regs[in.Ra])
			s.pc++

		case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpUDiv, isa.OpURem,
			isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpLShr, isa.OpAShr,
			isa.OpEq, isa.OpNe, isa.OpUlt, isa.OpUle, isa.OpSlt, isa.OpSle:
			a := s.regs[in.Ra]
			var b *expr.Expr
			if in.BImm {
				b = eb.Const(uint64(in.Imm), WordBits)
			} else {
				b = s.regs[in.Rb]
			}
			s.regs[in.Rd] = s.alu(in.Op, a, b)
			s.pc++

		case isa.OpJmp:
			s.pc = in.Target

		case isa.OpBrNZ, isa.OpBrZ:
			cond := eb.Ne(s.regs[in.Ra], eb.Const(0, WordBits))
			if in.Op == isa.OpBrZ {
				cond = eb.Not(cond)
			}
			if err := s.branch(cond, in.Target, h); err != nil {
				return err
			}

		case isa.OpCall:
			s.frames = append(s.frames, frame{fn: s.fn, pc: s.pc + 1})
			s.fn = in.Fn
			s.pc = 0

		case isa.OpRet:
			if len(s.frames) == 0 {
				s.status = StatusIdle
				s.fn = -1
				return nil
			}
			top := s.frames[len(s.frames)-1]
			s.frames = s.frames[:len(s.frames)-1]
			s.fn, s.pc = top.fn, top.pc

		case isa.OpHalt:
			s.Halt()
			return nil

		case isa.OpLoad:
			addr, err := s.concreteAddr(s.regs[in.Ra], in.Imm)
			if err != nil {
				s.Kill(err)
				return err
			}
			s.regs[in.Rd] = s.loadWord(addr)
			s.pc++

		case isa.OpStore:
			addr, err := s.concreteAddr(s.regs[in.Ra], in.Imm)
			if err != nil {
				s.Kill(err)
				return err
			}
			s.mem.store(addr, s.regs[in.Rb])
			s.pc++

		case isa.OpSym:
			name := fmt.Sprintf("%s_n%d_%d", in.Sym, s.node, s.symSeq)
			s.symSeq++
			if s.ctx.Replay != nil {
				v := eb.Const(s.ctx.Replay[name], int(in.Imm))
				s.regs[in.Rd] = eb.ZExt(v, WordBits)
			} else {
				v := eb.Var(name, int(in.Imm))
				s.regs[in.Rd] = eb.ZExt(v, WordBits)
			}
			s.pc++

		case isa.OpAssert:
			if err := s.assert(in, now, h); err != nil {
				return err
			}
			s.pc++

		case isa.OpAssume:
			cond := eb.Ne(s.regs[in.Ra], eb.Const(0, WordBits))
			// Merged execution: an assume that substitutes to constant true
			// for every member is a no-op on each of them (AddConstraint
			// drops structurally-true conditions), so the rep just advances.
			// Anything else splits; the members re-run the assume with their
			// own sessions and may die individually.
			if s.merged && !cond.IsTrue() && !cond.IsFalse() {
				if s.ctx.merge.MergedCheck(s, cond) == MergeFoldTrue {
					s.pc++
					continue
				}
				return nil
			}
			if sp := s.ctx.spec; sp != nil && !cond.IsTrue() && !cond.IsFalse() {
				if _, ok := s.impliedValue(cond); !ok {
					s.specAssume(sp, cond)
					continue
				}
			}
			feasible, err := s.feasibleWith(cond)
			if err != nil {
				s.Kill(err)
				return err
			}
			if !feasible {
				s.Kill(errors.New("vm: infeasible assume"))
				return nil
			}
			s.AddConstraint(cond)
			s.pc++

		case isa.OpSend:
			dst := s.regs[in.Ra]
			if !dst.IsConst() {
				err := errors.New("vm: symbolic packet destination")
				s.Kill(err)
				return err
			}
			buf, err := s.concreteAddr(s.regs[in.Rb], 0)
			if err != nil {
				s.Kill(err)
				return err
			}
			payload := make([]*expr.Expr, in.Imm)
			for i := range payload {
				payload[i] = s.loadWord(buf + uint32(i))
			}
			// Advance past the send before notifying, so a state-mapping
			// fork of the sender (never done by the paper's algorithms,
			// but allowed by the interface) resumes after the send.
			s.pc++
			h.OnSend(s, uint32(dst.ConstVal()), payload)

		case isa.OpTimer:
			delay := s.regs[in.Ra]
			if !delay.IsConst() {
				err := errors.New("vm: symbolic timer delay")
				s.Kill(err)
				return err
			}
			s.PushEvent(Event{
				Time: now + delay.ConstVal(),
				Kind: EventTimer,
				Fn:   in.Fn,
				Arg:  s.regs[in.Rb],
			})
			s.pc++

		case isa.OpNodeID:
			s.regs[in.Rd] = eb.Const(uint64(s.node), WordBits)
			s.pc++

		case isa.OpTime:
			s.regs[in.Rd] = eb.Const(now&0xffffffff, WordBits)
			s.pc++

		case isa.OpPrint:
			s.trace = append(s.trace, TraceEntry{Time: now, Msg: in.Sym, Val: s.regs[in.Ra]})
			s.pc++

		default:
			err := fmt.Errorf("vm: invalid opcode %v", in.Op)
			s.Kill(err)
			return err
		}
	}
	s.Kill(ErrStepBudget)
	return ErrStepBudget
}

func (s *State) alu(op isa.Op, a, b *expr.Expr) *expr.Expr {
	eb := s.ctx.Exprs
	switch op {
	case isa.OpAdd:
		return eb.Add(a, b)
	case isa.OpSub:
		return eb.Sub(a, b)
	case isa.OpMul:
		return eb.Mul(a, b)
	case isa.OpUDiv:
		return eb.UDiv(a, b)
	case isa.OpURem:
		return eb.URem(a, b)
	case isa.OpAnd:
		return eb.And(a, b)
	case isa.OpOr:
		return eb.Or(a, b)
	case isa.OpXor:
		return eb.Xor(a, b)
	case isa.OpShl:
		return eb.Shl(a, b)
	case isa.OpLShr:
		return eb.LShr(a, b)
	case isa.OpAShr:
		return eb.AShr(a, b)
	case isa.OpEq:
		return eb.BoolToBV(eb.Eq(a, b), WordBits)
	case isa.OpNe:
		return eb.BoolToBV(eb.Ne(a, b), WordBits)
	case isa.OpUlt:
		return eb.BoolToBV(eb.Ult(a, b), WordBits)
	case isa.OpUle:
		return eb.BoolToBV(eb.Ule(a, b), WordBits)
	case isa.OpSlt:
		return eb.BoolToBV(eb.Slt(a, b), WordBits)
	case isa.OpSle:
		return eb.BoolToBV(eb.Sle(a, b), WordBits)
	default:
		panic("vm: not an ALU op: " + op.String())
	}
}

// branch resolves a conditional branch, forking the state when both
// directions are feasible. The original state takes the true direction;
// the sibling takes the false direction — fixed so that exploration order
// is deterministic and comparable across mapping algorithms.
func (s *State) branch(cond *expr.Expr, target int, h Hooks) error {
	if cond.IsTrue() {
		s.pc = target
		return nil
	}
	if cond.IsFalse() {
		s.pc++
		return nil
	}
	// Merged execution: the rep may only continue while every member takes
	// the same constant direction; each member's own run would then decide
	// this branch structurally, with no constraint and no solver query. On
	// disagreement (or a genuinely symbolic condition) the manager has
	// split the rep — the members re-execute the branch individually.
	if s.merged {
		switch s.ctx.merge.MergedBranch(s, cond) {
		case MergeFoldTrue:
			s.pc = target
		case MergeFoldFalse:
			s.pc++
		}
		return nil
	}
	// Speculative path: fork both sides now, let the solver pipeline decide
	// feasibility while execution continues on the true side. Conditions
	// decided by implied-value concretization stay on the synchronous path —
	// they never reach the solver anyway.
	if sp := s.ctx.spec; sp != nil {
		if _, ok := s.impliedValue(cond); !ok {
			s.specBranch(sp, cond, target)
			return nil
		}
	}
	feasTrue, err := s.feasibleWith(cond)
	if err != nil {
		s.Kill(err)
		return err
	}
	notCond := s.ctx.Exprs.Not(cond)
	feasFalse, err := s.feasibleWith(notCond)
	if err != nil {
		s.Kill(err)
		return err
	}
	switch {
	case feasTrue && feasFalse:
		sibling := s.Fork()
		sibling.AddConstraint(notCond)
		sibling.pc++
		s.AddConstraint(cond)
		s.pc = target
		h.OnFork(s, sibling)
	case feasTrue:
		s.pc = target
	case feasFalse:
		s.pc++
	default:
		// The path condition itself became infeasible, which the engine's
		// invariants rule out; treat it as a dead state rather than panic.
		s.Kill(errors.New("vm: path condition infeasible at branch"))
	}
	return nil
}

// assert checks an assertion. If the condition can be false, a violation
// with a concrete witness model is reported; execution then continues on
// the true side if that is feasible, otherwise the state dies.
func (s *State) assert(in *isa.Instr, now uint64, h Hooks) error {
	eb := s.ctx.Exprs
	cond := eb.Ne(s.regs[in.Ra], eb.Const(0, WordBits))
	if cond.IsTrue() {
		return nil
	}
	// Merged execution: an assertion that substitutes to constant true for
	// every member passes structurally on each of them — the rep advances
	// with no witness query. Anything else splits so each member runs the
	// assert against its own session (violation witnesses are per member).
	if s.merged {
		s.ctx.merge.MergedCheck(s, cond)
		return nil
	}
	// A condition forced true by the path condition cannot fail on this
	// path: skip the (expensive, from-scratch) witness-model query. An
	// implied-false condition falls through — the violation report needs
	// the solver's concrete witness.
	if v, ok := s.impliedValue(cond); ok && v != 0 {
		return nil
	}
	notCond := eb.Not(cond)
	model, canFail, err := s.ctx.Solver.ModelWith(s.sess, s.pathCond, notCond)
	if err != nil {
		s.Kill(err)
		return err
	}
	if canFail {
		h.OnViolation(s, &Violation{
			Node:    s.node,
			Time:    now,
			Msg:     in.Sym,
			Model:   model,
			StateID: s.id,
			Cond:    notCond,
		})
	}
	feasTrue, err := s.feasibleWith(cond)
	if err != nil {
		s.Kill(err)
		return err
	}
	if !feasTrue {
		s.Kill(fmt.Errorf("%w: %q", ErrAssertFails, in.Sym))
		return nil
	}
	if canFail {
		s.AddConstraint(cond)
	}
	return nil
}

func (s *State) feasibleWith(c *expr.Expr) (bool, error) {
	if c.IsTrue() {
		return true, nil
	}
	if c.IsFalse() {
		return false, nil
	}
	// Implied-value concretization: when every variable of c is forced
	// to a constant by the path condition, c has exactly one value on
	// this path — the conjunction pathCond ∧ c is then feasible iff that
	// value is true (path conditions are kept feasible by construction),
	// with no solver query at all. This is what makes straight-line code
	// after a determining branch effectively concrete.
	if v, ok := s.impliedValue(c); ok {
		return v != 0, nil
	}
	return s.ctx.Solver.FeasibleWith(s.sess, s.pathCond, c)
}

// impliedValue evaluates c under the state's implied bindings, reporting
// ok=false when concretization is off or some variable of c is unbound.
func (s *State) impliedValue(c *expr.Expr) (uint64, bool) {
	if !s.ctx.concretize || len(s.bound) == 0 {
		return 0, false
	}
	v, ok := expr.EvalBound(c, s.bound)
	if ok {
		s.ctx.qo.NoteConcretizedRead()
	}
	return v, ok
}

func (s *State) concreteAddr(base *expr.Expr, off uint32) (uint32, error) {
	if !base.IsConst() {
		return 0, errors.New("vm: symbolic memory address")
	}
	return uint32(base.ConstVal()) + off, nil
}
