// State images: a plain-data, exported mirror of the VM state used by the
// checkpoint subsystem. Image flattens a State (and deduplicates its COW
// memory pages through a PageTable); RestoreStates rebuilds live states —
// with the original ids, shared pages, and re-warmed solver sessions —
// from images that have already survived a round-trip through untrusted
// bytes, so every structural assumption is validated rather than assumed.
package vm

import (
	"errors"
	"fmt"
	"sort"

	"sde/internal/expr"
	"sde/internal/isa"
)

// PageWords is the number of machine words in one memory page.
const PageWords = pageWords

// PageTable deduplicates memory pages across the states of one snapshot.
// Shared pages (the COW fork case) are interned once, keyed by their
// process-global identity but numbered densely in first-reference order —
// a stable numbering that survives encode→decode→encode byte-identically,
// which raw page ids (fresh per process) would not.
type PageTable struct {
	index map[uint64]int // page identity -> dense index
	words [][]*expr.Expr
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{index: make(map[uint64]int)}
}

// Pages returns the interned pages in dense index order. Each page is a
// PageWords-long slice with nil entries for unwritten (zero) words.
func (t *PageTable) Pages() [][]*expr.Expr { return t.words }

func (t *PageTable) intern(p *page) int {
	if i, ok := t.index[p.id]; ok {
		return i
	}
	i := len(t.words)
	t.index[p.id] = i
	t.words = append(t.words, append([]*expr.Expr(nil), p.words[:]...))
	return i
}

// PageRef attaches one interned page to a state's address space.
type PageRef struct {
	MemIndex uint32 // page number within the state's address space
	Page     int    // dense index into the snapshot's page table
}

// FrameImage is one saved return address.
type FrameImage struct {
	Fn, PC int
}

// EventImage is a pending event without its queue-internal sequence
// number; restored events are renumbered 0..n-1 in queue order, which
// preserves the only property the engine relies on (relative order among
// same-time events) and is invisible to fingerprints.
type EventImage struct {
	Time uint64
	Kind EventKind
	Fn   int
	Arg  *expr.Expr // nilable
	Src  uint32
	Data []*expr.Expr
}

// StateImage is the flattened form of a State.
type StateImage struct {
	ID   uint64
	Node int

	Regs   []*expr.Expr // always isa.NumRegs entries; nil = never written
	Frames []FrameImage
	Fn, PC int

	Status Status
	HasErr bool
	ErrMsg string

	PathCond []*expr.Expr
	Events   []EventImage

	Hist  []HistEntry
	Trace []TraceEntry

	SendSeq, RecvSeq, SymSeq uint32
	Steps                    uint64

	Pages []PageRef // sorted by MemIndex
}

// Image flattens the state, interning its memory pages into t.
func (s *State) Image(t *PageTable) StateImage {
	img := StateImage{
		ID:       s.id,
		Node:     s.node,
		Regs:     append([]*expr.Expr(nil), s.regs[:]...),
		Fn:       s.fn,
		PC:       s.pc,
		Status:   s.status,
		PathCond: append([]*expr.Expr(nil), s.pathCond...),
		Hist:     append([]HistEntry(nil), s.hist...),
		Trace:    append([]TraceEntry(nil), s.trace...),
		SendSeq:  s.sendSeq,
		RecvSeq:  s.recvSeq,
		SymSeq:   s.symSeq,
		Steps:    s.steps,
	}
	if s.runErr != nil {
		img.HasErr = true
		img.ErrMsg = s.runErr.Error()
	}
	for _, fr := range s.frames {
		img.Frames = append(img.Frames, FrameImage{Fn: fr.fn, PC: fr.pc})
	}
	for _, ev := range s.events {
		img.Events = append(img.Events, EventImage{
			Time: ev.Time,
			Kind: ev.Kind,
			Fn:   ev.Fn,
			Arg:  ev.Arg,
			Src:  ev.Src,
			Data: append([]*expr.Expr(nil), ev.Data...),
		})
	}
	idxs := make([]uint32, 0, len(s.mem.pages))
	for idx := range s.mem.pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		img.Pages = append(img.Pages, PageRef{MemIndex: idx, Page: t.intern(s.mem.pages[idx])})
	}
	return img
}

// RestoreStates rebuilds live states from images and the snapshot's page
// table, preserving state ids and re-sharing pages referenced by several
// states (with fresh process-local page identities, which fingerprints and
// memory accounting are insensitive to). Each restored state gets a fresh
// solver session re-warmed on its path condition — solver state is
// deliberately never serialized.
func RestoreStates(ctx *Context, prog *isa.Program, images []StateImage, pages [][]*expr.Expr) ([]*State, error) {
	for i, pw := range pages {
		if len(pw) != PageWords {
			return nil, fmt.Errorf("vm: restored page %d has %d words, want %d", i, len(pw), PageWords)
		}
	}
	shared := make([]*page, len(pages))
	out := make([]*State, 0, len(images))
	for i := range images {
		img := &images[i]
		s, err := restoreState(ctx, prog, img, pages, shared)
		if err != nil {
			return nil, fmt.Errorf("vm: restore state %d: %w", img.ID, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func restoreState(ctx *Context, prog *isa.Program, img *StateImage, pages [][]*expr.Expr, shared []*page) (*State, error) {
	if img.Node < 0 {
		return nil, fmt.Errorf("negative node id %d", img.Node)
	}
	if len(img.Regs) != isa.NumRegs {
		return nil, fmt.Errorf("%d registers, want %d", len(img.Regs), isa.NumRegs)
	}
	switch img.Status {
	case StatusIdle, StatusHalted, StatusDead:
	default:
		// StatusRunning is transient within Engine.Step and never a
		// legal checkpoint boundary.
		return nil, fmt.Errorf("status %d not restorable", img.Status)
	}
	if img.Fn < -1 || img.Fn >= prog.NumFuncs() {
		return nil, fmt.Errorf("function %d outside program", img.Fn)
	}
	s := &State{
		ctx:      ctx,
		prog:     prog,
		id:       img.ID,
		node:     img.Node,
		mem:      newMemory(),
		fn:       img.Fn,
		pc:       img.PC,
		status:   img.Status,
		pathCond: append([]*expr.Expr(nil), img.PathCond...),
		hist:     append([]HistEntry(nil), img.Hist...),
		trace:    append([]TraceEntry(nil), img.Trace...),
		sendSeq:  img.SendSeq,
		recvSeq:  img.RecvSeq,
		symSeq:   img.SymSeq,
		steps:    img.Steps,
	}
	copy(s.regs[:], img.Regs)
	if img.HasErr {
		s.runErr = errors.New(img.ErrMsg)
	}
	for _, fr := range img.Frames {
		if fr.Fn < 0 || fr.Fn >= prog.NumFuncs() || fr.PC < 0 {
			return nil, fmt.Errorf("frame (%d,%d) outside program", fr.Fn, fr.PC)
		}
		s.frames = append(s.frames, frame{fn: fr.Fn, pc: fr.PC})
	}
	var prevTime uint64
	for i, ev := range img.Events {
		if ev.Kind < EventBoot || ev.Kind > EventRecv {
			return nil, fmt.Errorf("event %d has kind %d", i, ev.Kind)
		}
		if ev.Fn < -1 || ev.Fn >= prog.NumFuncs() {
			return nil, fmt.Errorf("event %d targets function %d", i, ev.Fn)
		}
		if ev.Time < prevTime {
			return nil, fmt.Errorf("event %d out of time order", i)
		}
		prevTime = ev.Time
		s.events = append(s.events, &Event{
			Time: ev.Time,
			Kind: ev.Kind,
			Fn:   ev.Fn,
			Arg:  ev.Arg,
			Src:  ev.Src,
			Data: append([]*expr.Expr(nil), ev.Data...),
			seq:  uint64(i),
		})
	}
	s.eventSeq = uint64(len(img.Events))
	var prevIdx int64 = -1
	for _, ref := range img.Pages {
		if ref.Page < 0 || ref.Page >= len(shared) {
			return nil, fmt.Errorf("page ref %d outside table", ref.Page)
		}
		if int64(ref.MemIndex) <= prevIdx {
			return nil, fmt.Errorf("page index %d out of order", ref.MemIndex)
		}
		prevIdx = int64(ref.MemIndex)
		p := shared[ref.Page]
		if p == nil {
			p = &page{id: pageIDSeq.Add(1)}
			copy(p.words[:], pages[ref.Page])
			shared[ref.Page] = p
		}
		p.ref++
		s.mem.pages[ref.MemIndex] = p
	}
	s.sess = ctx.Solver.NewSession()
	ctx.Solver.WarmSession(s.sess, s.pathCond)
	// Implied bindings are derived from the path condition and never
	// serialized; replay the restored constraints through the same
	// recording the live run used.
	for _, c := range s.pathCond {
		s.noteBinding(c)
	}
	return s, nil
}

// RestoreCounters overwrites the context's global counters with values
// recovered from a checkpoint, so ids assigned after a resume continue
// exactly where the interrupted run stopped — the property that makes a
// resumed exploration bit-identical to an uninterrupted one.
func (c *Context) RestoreCounters(nextStateID, instructions, forks uint64) {
	c.nextStateID.Store(nextStateID)
	c.instrCount.Store(instructions)
	c.forkCount.Store(forks)
}

// StateIDSeq returns the number of state ids handed out so far.
func (c *Context) StateIDSeq() uint64 { return c.nextStateID.Load() }
