package vm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sde/internal/expr"
	"sde/internal/isa"
)

// genDiffProgram builds a deterministic pseudo-random terminating program
// for the compiled-vs-interpreted differential: concrete ALU chains,
// bounded loops, memory traffic, a helper call, symbolic inputs feeding
// branches and asserts, and sends. Register discipline keeps it
// terminating: R15 is reserved for loop counters and R10 for the memory
// base, so random ops never clobber control state.
func genDiffProgram(tb testing.TB, seed int64) *isa.Program {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder()

	helper := b.Func("helper")
	helper.Add(isa.R3, isa.R1, isa.R2)
	helper.MulI(isa.R3, isa.R3, 2654435761)
	helper.XorI(isa.R1, isa.R3, 0x5bd1)
	helper.Ret()

	f := b.Func("main")
	f.MovI(isa.R10, 0x1000) // memory base
	gp := []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7}
	reg := func() isa.Reg { return gp[rng.Intn(len(gp))] }
	seen := 0 // labels minted so far
	label := func(prefix string) string {
		seen++
		return fmt.Sprintf("%s%d", prefix, seen)
	}

	emitALU := func() {
		rd, ra, rb := reg(), reg(), reg()
		switch rng.Intn(12) {
		case 0:
			f.MovI(rd, rng.Uint32())
		case 1:
			f.Add(rd, ra, rb)
		case 2:
			f.Sub(rd, ra, rb)
		case 3:
			f.Mul(rd, ra, rb)
		case 4:
			f.UDiv(rd, ra, rb) // division by zero is defined (all-ones)
		case 5:
			f.URem(rd, ra, rb)
		case 6:
			f.Xor(rd, ra, rb)
		case 7:
			f.ShlI(rd, ra, rng.Uint32()%40) // oversized shifts included
		case 8:
			f.LShrI(rd, ra, rng.Uint32()%40)
		case 9:
			f.Not(rd, ra)
		case 10:
			f.Slt(rd, ra, rb)
		case 11:
			f.Ult(rd, ra, rb)
		}
	}

	syms := 0
	for seg := 0; seg < 4+rng.Intn(4); seg++ {
		switch rng.Intn(7) {
		case 0: // straight-line ALU burst
			for i := 0; i < 2+rng.Intn(5); i++ {
				emitALU()
			}
		case 1: // bounded concrete loop
			l := label("loop")
			f.MovI(isa.R15, uint32(1+rng.Intn(6)))
			f.Label(l)
			for i := 0; i < 1+rng.Intn(3); i++ {
				emitALU()
			}
			f.SubI(isa.R15, isa.R15, 1)
			f.BrNZ(isa.R15, l)
		case 2: // memory round-trip
			f.Store(isa.R10, rng.Uint32()%16, reg())
			f.Load(reg(), isa.R10, rng.Uint32()%16)
		case 3: // symbolic input + branch (forks both modes identically)
			if syms < 2 {
				name := fmt.Sprintf("s%d", syms)
				syms++
				skip := label("skip")
				f.Sym(isa.R8, name, uint32(1+rng.Intn(3)))
				f.UltI(isa.R9, isa.R8, uint32(1+rng.Intn(4)))
				f.BrZ(isa.R9, skip)
				emitALU()
				f.Label(skip)
				f.Nop()
			} else {
				emitALU()
			}
		case 4: // assert, sometimes on symbolic data
			if syms > 0 && rng.Intn(2) == 0 {
				f.NeI(isa.R9, isa.R8, rng.Uint32()%4)
			} else {
				f.EqI(isa.R9, reg(), rng.Uint32())
			}
			f.Assert(isa.R9, label("a"))
		case 5: // send a two-word payload to a concrete peer
			f.MovI(isa.R11, uint32(1+rng.Intn(3)))
			f.Send(isa.R11, isa.R10, 2)
		case 6:
			f.Call("helper")
		}
	}
	f.Ret()

	prog, err := b.Build()
	if err != nil {
		tb.Fatalf("seed %d: Build: %v", seed, err)
	}
	return prog
}

// diffHooks records every observable side effect of an exploration in a
// comparable form.
type diffHooks struct {
	pending    []*State
	sends      []uint64
	violations []string
}

func (h *diffHooks) OnFork(_, sibling *State) { h.pending = append(h.pending, sibling) }

func (h *diffHooks) OnSend(_ *State, dst uint32, payload []*expr.Expr) {
	v := uint64(dst)
	for _, p := range payload {
		v = v*1099511628211 ^ p.Hash()
	}
	h.sends = append(h.sends, v)
}

func (h *diffHooks) OnViolation(_ *State, v *Violation) {
	h.violations = append(h.violations,
		fmt.Sprintf("n%d@%d %s %v", v.Node, v.Time, v.Msg, v.Model))
}

// diffResult is everything a mode's exploration produced. The two modes
// must agree on all of it bit-for-bit.
type diffResult struct {
	Fingerprints []uint64
	Steps        []uint64
	Statuses     []Status
	Errs         []string
	Sends        []uint64
	Violations   []string
	Instructions uint64
	Forks        uint64
}

// diffExplore is a miniature DFS exploration (the shape of Explore) that
// keeps sends and violations for comparison.
func diffExplore(tb testing.TB, prog *isa.Program, compile bool) diffResult {
	tb.Helper()
	ctx := NewContext()
	ctx.SetCompiledIR(compile)
	h := &diffHooks{}
	root := NewState(ctx, prog, 1)
	root.StartCall(prog.FuncIndex("main"))
	stack := []*State{root}
	var res diffResult
	for len(stack) > 0 && len(res.Fingerprints) < 128 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h.pending = h.pending[:0]
		err := s.Run(0, 1<<16, h)
		stack = append(stack, h.pending...)
		res.Fingerprints = append(res.Fingerprints, s.Fingerprint())
		res.Steps = append(res.Steps, s.Steps())
		res.Statuses = append(res.Statuses, s.Status())
		if err != nil {
			res.Errs = append(res.Errs, err.Error())
		}
	}
	res.Sends = h.sends
	res.Violations = h.violations
	res.Instructions = ctx.Instructions()
	res.Forks = ctx.Forks()
	if compile {
		if ctx.SlowBlocks() == 0 && ctx.FastBlocks() == 0 {
			tb.Errorf("compiled run recorded no block executions at all")
		}
	} else if ctx.FastBlocks() != 0 || ctx.SlowBlocks() != 0 || ctx.FoldedInstrs() != 0 {
		tb.Errorf("compile-off run recorded block counters: fast=%d slow=%d folded=%d",
			ctx.FastBlocks(), ctx.SlowBlocks(), ctx.FoldedInstrs())
	}
	return res
}

func checkDiff(tb testing.TB, seed int64) {
	tb.Helper()
	prog := genDiffProgram(tb, seed)
	compiled := diffExplore(tb, prog, true)
	interp := diffExplore(tb, prog, false)
	if !reflect.DeepEqual(compiled, interp) {
		tb.Errorf("seed %d: compiled and interpreted runs diverge\ncompiled:    %+v\ninterpreted: %+v\nprogram:\n%s",
			seed, compiled, interp, isa.WriteAsm(prog))
	}
}

// TestCompiledDiffRandomPrograms is the differential oracle for the
// basic-block fast path: over a corpus of random programs, a compiled
// exploration must produce exactly the interpreted exploration —
// fingerprints, per-path step counts, statuses, forks, sends, violation
// witnesses, and total instruction count.
func TestCompiledDiffRandomPrograms(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < n; seed++ {
		checkDiff(t, seed)
	}
}

// FuzzCompiledDiff is the coverage-guided companion of
// TestCompiledDiffRandomPrograms.
func FuzzCompiledDiff(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkDiff(t, seed)
	})
}

// TestEvalALUMatchesExprBuilder pins the fast path's native ALU to the
// expression builder's constant-folding semantics for every binary opcode
// over edge-case and random operands — the agreement the whole fast path
// rests on.
func TestEvalALUMatchesExprBuilder(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		b.Func("main").Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	eb := ctx.Exprs

	ops := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpUDiv, isa.OpURem,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpLShr, isa.OpAShr,
		isa.OpEq, isa.OpNe, isa.OpUlt, isa.OpUle, isa.OpSlt, isa.OpSle,
	}
	edges := []uint64{0, 1, 2, 7, 31, 32, 33, 40, 0x7fffffff, 0x80000000, 0xfffffffe, 0xffffffff}
	var pairs [][2]uint64
	for _, a := range edges {
		for _, b := range edges {
			pairs = append(pairs, [2]uint64{a, b})
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		pairs = append(pairs, [2]uint64{uint64(rng.Uint32()), uint64(rng.Uint32())})
	}

	for _, op := range ops {
		for _, p := range pairs {
			ref := s.alu(op, eb.Const(p[0], WordBits), eb.Const(p[1], WordBits))
			if !ref.IsConst() {
				t.Fatalf("%v(%#x, %#x): builder result not constant", op, p[0], p[1])
			}
			if got := isa.EvalALU(op, p[0], p[1]); got != ref.ConstVal() {
				t.Errorf("EvalALU(%v, %#x, %#x) = %#x, builder says %#x",
					op, p[0], p[1], got, ref.ConstVal())
			}
		}
	}
}
