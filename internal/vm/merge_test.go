package vm

// VM-layer state-merging unit tests: the structural diff that finds
// mergeable sibling pairs and bounds their divergence sites, the fusion
// that rewrites those sites into ite(Δ, va, vb) values, and the
// substitution-based reconstruction that must return each member's exact
// machine — pointer-identical values, since the expression DAG is
// hash-consed and every observable (fingerprints, constraints, test
// cases) flows from those pointers.

import (
	"testing"

	"sde/internal/expr"
	"sde/internal/isa"
)

// forkedSiblings runs a program with one symbolic branch to completion on
// both sides and returns the two resulting sibling states (true side
// first: the original keeps the taken branch).
func forkedSiblings(t *testing.T, f func(b *isa.Builder)) (*State, *State, *Context) {
	t.Helper()
	prog := build(t, f)
	ctx := NewContext()
	s := NewState(ctx, prog, 1)
	s.StartCall(prog.FuncIndex("main"))
	h := &forkCollector{}
	if err := s.Run(0, 0, h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.siblings) != 1 {
		t.Fatalf("forks = %d, want 1", len(h.siblings))
	}
	sib := h.siblings[0]
	if err := sib.Run(0, 0, h); err != nil {
		t.Fatalf("sibling Run: %v", err)
	}
	return s, sib, ctx
}

// divergeProg: one symbolic branch whose sides leave different symbolic
// values in a register and different words at one memory address, then
// reconverge to the same return — the canonical mergeable pair. Both
// sides jump to one shared Ret: mergeability requires an identical final
// program position, which two separate Rets would break.
func divergeProg(b *isa.Builder) {
	f := b.Func("main")
	f.Sym(isa.R1, "x", 32)
	f.UltI(isa.R2, isa.R1, 50)
	f.MovI(isa.R4, 64) // address
	f.BrNZ(isa.R2, "small")
	f.AddI(isa.R3, isa.R1, 2) // x >= 50 side
	f.MovI(isa.R5, 20)
	f.Store(isa.R4, 0, isa.R5)
	f.Jmp("done")
	f.Label("small")
	f.AddI(isa.R3, isa.R1, 1) // x < 50 side
	f.MovI(isa.R5, 10)
	f.Store(isa.R4, 0, isa.R5)
	f.Jmp("done")
	f.Label("done")
	f.Ret()
}

func TestMergeClassHashBucketsSiblings(t *testing.T) {
	a, b, _ := forkedSiblings(t, divergeProg)
	if a.MergeClassHash() != b.MergeClassHash() {
		t.Error("sibling states at the same program position hash to different merge classes")
	}
	// A state of another node can never merge and must bucket apart.
	other := NewState(a.ctx, a.prog, 2)
	if a.MergeClassHash() == other.MergeClassHash() {
		t.Error("states of different nodes share a merge class")
	}
}

func TestDiffMergeableSitesAndBounds(t *testing.T) {
	a, b, _ := forkedSiblings(t, divergeProg)

	d, ok := DiffMergeable(a, b, 8)
	if !ok {
		t.Fatal("sibling pair not mergeable")
	}
	// Exactly three divergences: R3 (x+1 vs x+2), R5 (10 vs 20), and the
	// stored memory word. R1, R2, and R4 are shared expressions.
	if len(d.Sites) != 3 {
		t.Fatalf("sites = %d (%+v), want 3", len(d.Sites), d.Sites)
	}
	var regSites, memSites int
	for _, site := range d.Sites {
		if site.A == site.B || site.A == nil || site.B == nil {
			t.Errorf("degenerate site %+v", site)
		}
		switch site.Kind {
		case MergeSiteReg:
			regSites++
		case MergeSiteMem:
			memSites++
		default:
			t.Errorf("unexpected site kind %d", site.Kind)
		}
	}
	if regSites != 2 || memSites != 1 {
		t.Errorf("site kinds: %d reg / %d mem, want 2/1", regSites, memSites)
	}

	// The site bound is hard: the same pair with maxSites=2 must refuse.
	if _, ok := DiffMergeable(a, b, 2); ok {
		t.Error("DiffMergeable ignored the site bound")
	}
	// A state never merges with itself, and identical machines (a
	// speculative fork shares every value pointer) yield no sites.
	if _, ok := DiffMergeable(a, a, 8); ok {
		t.Error("state merged with itself")
	}
	clone := a.SpecFork()
	if _, ok := DiffMergeable(a, clone, 8); ok {
		t.Error("identical machines reported mergeable — duplicates belong to the mapping algorithms")
	}
}

func TestFuseStatesAndAdoptRoundTrip(t *testing.T) {
	a, b, ctx := forkedSiblings(t, divergeProg)
	eb := ctx.Exprs

	// The policy layer computes Δ as a's path-condition suffix past the
	// common prefix; here the fork is the only constraint.
	if len(a.PathCond()) != 1 {
		t.Fatalf("a has %d constraints, want 1", len(a.PathCond()))
	}
	delta := a.PathCond()[0]

	d, ok := DiffMergeable(a, b, 8)
	if !ok {
		t.Fatal("pair not mergeable")
	}
	wantA := map[MergeSiteKind]*expr.Expr{}
	wantB := map[MergeSiteKind]*expr.Expr{}
	for _, site := range d.Sites {
		if site.Kind == MergeSiteReg && site.Index == int(isa.R3) {
			wantA[site.Kind], wantB[site.Kind] = site.A, site.B
		}
	}

	rep, subA, subB := FuseStates(a, b, delta, d)
	if !rep.IsMergedRep() {
		t.Error("fused state not marked as rep")
	}
	if rep.ID() != a.ID() {
		t.Errorf("rep id = %d, want a's id %d", rep.ID(), a.ID())
	}
	// Every site became ite(Δ, va, vb), resolvable back per member.
	r3 := rep.Reg(isa.R3)
	if want := eb.Ite(delta, wantA[MergeSiteReg], wantB[MergeSiteReg]); r3 != want {
		t.Errorf("rep r3 = %v, want %v", r3, want)
	}
	if subA[r3] != wantA[MergeSiteReg] || subB[r3] != wantB[MergeSiteReg] {
		t.Error("substitution maps do not resolve the rep's ite to the member arms")
	}

	// Reconstruction must return the members' exact machines. Capture the
	// originals, freeze the members (releasing their machines), then
	// adopt back from the rep.
	aRegs := make([]*expr.Expr, isa.NumRegs)
	bRegs := make([]*expr.Expr, isa.NumRegs)
	for i := 0; i < isa.NumRegs; i++ {
		aRegs[i] = a.Reg(isa.Reg(i))
		bRegs[i] = b.Reg(isa.Reg(i))
	}
	repSteps := rep.Steps()
	a.MergeFreeze()
	b.MergeFreeze()

	memoA := make(map[*expr.Expr]*expr.Expr)
	a.AdoptMergedMachine(rep, subA, memoA, 7)
	memoB := make(map[*expr.Expr]*expr.Expr)
	b.AdoptMergedMachine(rep, subB, memoB, 7)
	for i := 0; i < isa.NumRegs; i++ {
		if a.Reg(isa.Reg(i)) != aRegs[i] {
			t.Errorf("a r%d = %v, want %v (pointer identity)", i, a.Reg(isa.Reg(i)), aRegs[i])
		}
		if b.Reg(isa.Reg(i)) != bRegs[i] {
			t.Errorf("b r%d = %v, want %v (pointer identity)", i, b.Reg(isa.Reg(i)), bRegs[i])
		}
	}
	if got, want := a.Steps(), repSteps+7; got != want {
		t.Errorf("a steps = %d, want rep's %d + 7 extra", got, want)
	}

	// Retiring the rep kills its machine and unmarks it.
	rep.MergeDiscard()
	if rep.IsMergedRep() || rep.Status() != StatusHalted {
		t.Errorf("discarded rep: merged=%v status=%v", rep.IsMergedRep(), rep.Status())
	}
}
