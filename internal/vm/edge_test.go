package vm

import (
	"testing"

	"sde/internal/expr"
	"sde/internal/isa"
)

func TestSymbolicStoreAddressKills(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "p", 32)
		f.MovI(isa.R2, 1)
		f.Store(isa.R1, 0, isa.R2)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(0, 0, NopHooks{}); err == nil {
		t.Error("symbolic store address did not error")
	}
	if s.Status() != StatusDead {
		t.Errorf("status = %v, want dead", s.Status())
	}
}

func TestSymbolicSendDestinationKills(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "dst", 32)
		f.MovI(isa.R2, 0x300)
		f.Send(isa.R1, isa.R2, 1)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(0, 0, NopHooks{}); err == nil {
		t.Error("symbolic send destination did not error")
	}
}

func TestSymbolicTimerDelayKills(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "d", 32)
		f.Timer("main", isa.R1, isa.R0)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(0, 0, NopHooks{}); err == nil {
		t.Error("symbolic timer delay did not error")
	}
}

func TestHaltDropsPendingEvents(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 5)
		f.Timer("main", isa.R1, isa.R0)
		f.Halt()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(0, 0, NopHooks{}); err != nil {
		t.Fatal(err)
	}
	if s.PendingEvents() != 0 {
		t.Errorf("halted state keeps %d pending events", s.PendingEvents())
	}
}

func TestDeepCallStack(t *testing.T) {
	// 64 levels of nested calls via a recursive-looking chain of two
	// functions (no real recursion: a counter drives repeated Call).
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 0)
		f.Call("down")
		f.Ret()
		d := b.Func("down")
		d.AddI(isa.R1, isa.R1, 1)
		d.UltI(isa.R2, isa.R1, 64)
		d.BrZ(isa.R2, "base")
		d.Call("down")
		d.Label("base")
		d.AddI(isa.R3, isa.R3, 1) // counts unwinding steps
		d.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(0, 0, NopHooks{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Reg(isa.R3).ConstVal(); got != 64 {
		t.Errorf("unwind count = %d, want 64", got)
	}
	if s.Status() != StatusIdle {
		t.Errorf("status = %v", s.Status())
	}
}

func TestPrintTrace(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovI(isa.R1, 7)
		f.Print("first", isa.R1)
		f.Sym(isa.R2, "x", 8)
		f.Print("second", isa.R2)
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	if err := s.Run(42, 0, NopHooks{}); err != nil {
		t.Fatal(err)
	}
	tr := s.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace = %d entries, want 2", len(tr))
	}
	if tr[0].Msg != "first" || tr[0].Time != 42 || tr[0].Val.ConstVal() != 7 {
		t.Errorf("entry 0 = %+v", tr[0])
	}
	if tr[1].Val.IsConst() {
		t.Error("symbolic print value was concretised")
	}
}

func TestForkPreservesTrace(t *testing.T) {
	prog := build(t, func(b *isa.Builder) { b.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.trace = append(s.trace, TraceEntry{Time: 1, Msg: "x"})
	sib := s.Fork()
	s.trace = append(s.trace, TraceEntry{Time: 2, Msg: "y"})
	if len(sib.Trace()) != 1 {
		t.Errorf("sibling trace = %d entries, want 1", len(sib.Trace()))
	}
}

func TestReplayModeConcretisesInputs(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "x", 8)
		f.UltI(isa.R2, isa.R1, 100)
		f.BrNZ(isa.R2, "low")
		f.MovI(isa.R3, 2)
		f.Ret()
		f.Label("low")
		f.MovI(isa.R3, 1)
		f.Ret()
	})
	ctx := NewContext()
	ctx.Replay = expr.Env{"x_n0_0": 150}
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	h := &forkCollector{}
	if err := s.Run(0, 0, h); err != nil {
		t.Fatal(err)
	}
	if len(h.siblings) != 0 {
		t.Error("replay mode forked")
	}
	if got := s.Reg(isa.R3).ConstVal(); got != 2 {
		t.Errorf("r3 = %d, want 2 (x=150 takes the high path)", got)
	}
	// Missing inputs default to zero.
	ctx2 := NewContext()
	ctx2.Replay = expr.Env{}
	s2 := NewState(ctx2, prog, 0)
	s2.StartCall(prog.FuncIndex("main"))
	if err := s2.Run(0, 0, NopHooks{}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Reg(isa.R3).ConstVal(); got != 1 {
		t.Errorf("r3 = %d, want 1 (default 0 takes the low path)", got)
	}
}

func TestContextCounters(t *testing.T) {
	prog := build(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.Sym(isa.R1, "b", 1)
		f.BrNZ(isa.R1, "t")
		f.Label("t")
		f.Ret()
	})
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	s.StartCall(prog.FuncIndex("main"))
	h := &forkCollector{}
	if err := s.Run(0, 0, h); err != nil {
		t.Fatal(err)
	}
	if ctx.Instructions() == 0 {
		t.Error("instruction counter not advanced")
	}
	if ctx.Forks() != 1 {
		t.Errorf("fork counter = %d, want 1", ctx.Forks())
	}
	if s.Steps() == 0 {
		t.Error("per-state step counter not advanced")
	}
}
