package vm

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders a human-readable snapshot of the state for diagnostics:
// identity, program position, non-zero registers, touched memory words,
// path condition, communication history, and pending events.
func (s *State) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "state #%d node %d status=%s steps=%d\n",
		s.id, s.node, statusName(s.status), s.steps)
	if s.status == StatusRunning {
		fmt.Fprintf(&sb, "  at fn%d pc=%d, %d frames\n", s.fn, s.pc, len(s.frames))
	}
	for i, r := range s.regs {
		if r != nil && !(r.IsConst() && r.ConstVal() == 0) {
			fmt.Fprintf(&sb, "  r%-2d = %v\n", i, r)
		}
	}
	var addrs []uint32
	for pageIdx, p := range s.mem.pages {
		for wi, w := range p.words {
			if w != nil && !(w.IsConst() && w.ConstVal() == 0) {
				addrs = append(addrs, pageIdx<<pageShift|uint32(wi))
			}
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(&sb, "  mem[%#06x] = %v\n", a, s.mem.load(a))
	}
	for _, c := range s.pathCond {
		fmt.Fprintf(&sb, "  constraint %v\n", c)
	}
	for _, h := range s.hist {
		dir := "sent"
		if h.Dir == DirRecv {
			dir = "recv"
		}
		fmt.Fprintf(&sb, "  %s peer=%d t=%d seq=%d\n", dir, h.Peer, h.Time, h.Seq)
	}
	for _, ev := range s.events {
		fmt.Fprintf(&sb, "  pending %s at t=%d\n", eventKindName(ev.Kind), ev.Time)
	}
	return sb.String()
}

func statusName(st Status) string {
	switch st {
	case StatusIdle:
		return "idle"
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusDead:
		return "dead"
	default:
		return fmt.Sprintf("status(%d)", st)
	}
}

func eventKindName(k EventKind) string {
	switch k {
	case EventBoot:
		return "boot"
	case EventTimer:
		return "timer"
	case EventRecv:
		return "recv"
	default:
		return fmt.Sprintf("event(%d)", k)
	}
}
