package vm

import (
	"fmt"

	"sde/internal/expr"
	"sde/internal/isa"
)

// PathResult describes one completed execution path of a single-program
// exploration: its final state, path condition, and a concrete test case
// (paper Figure 1: one test case per explored path).
type PathResult struct {
	State    *State
	PathCond []*expr.Expr
	TestCase expr.Env
	Trace    []TraceEntry
}

// ExploreReport aggregates a full single-program exploration.
type ExploreReport struct {
	Paths        []PathResult
	Violations   []*Violation
	Instructions uint64
}

// ExploreOptions tunes Explore.
type ExploreOptions struct {
	// MaxPaths aborts the exploration after this many completed paths;
	// zero means unlimited.
	MaxPaths int
	// StepBudget bounds instructions per activation; zero selects
	// DefaultStepBudget.
	StepBudget int
	// DisableCompiledIR turns the basic-block compiled fast path off for
	// this exploration (see Context.SetCompiledIR). Compiled and
	// interpreted explorations produce identical paths and test cases.
	DisableCompiledIR bool
}

// Explore symbolically executes a single program from the given entry
// function to completion, following every feasible path (regular symbolic
// execution, paper §II-A). It is the single-node special case of SDE:
// no network, no state mapping.
func Explore(ctx *Context, prog *isa.Program, entry string, opts ExploreOptions) (*ExploreReport, error) {
	fnIdx := prog.FuncIndex(entry)
	if fnIdx < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoBoot, entry)
	}
	if opts.DisableCompiledIR {
		ctx.SetCompiledIR(false)
	}
	report := &ExploreReport{}
	collector := &exploreHooks{report: report}

	root := NewState(ctx, prog, 0)
	root.StartCall(fnIdx)
	stack := []*State{root}

	startInstr := ctx.Instructions()
	for len(stack) > 0 {
		if opts.MaxPaths > 0 && len(report.Paths) >= opts.MaxPaths {
			break
		}
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		collector.pending = collector.pending[:0]
		if err := s.Run(0, opts.StepBudget, collector); err != nil {
			return nil, fmt.Errorf("vm: explore: %w", err)
		}
		// Depth-first: siblings forked during this run are explored next.
		stack = append(stack, collector.pending...)
		switch s.Status() {
		case StatusIdle, StatusHalted:
			model, sat, err := ctx.Solver.Model(s.PathCond())
			if err != nil {
				return nil, fmt.Errorf("vm: explore: test case: %w", err)
			}
			if !sat {
				return nil, fmt.Errorf("vm: explore: completed path has unsat condition")
			}
			report.Paths = append(report.Paths, PathResult{
				State:    s,
				PathCond: s.PathCond(),
				TestCase: model,
				Trace:    s.Trace(),
			})
		case StatusDead:
			// Infeasible assume or runtime error: path abandoned.
		}
	}
	report.Instructions = ctx.Instructions() - startInstr
	return report, nil
}

type exploreHooks struct {
	report  *ExploreReport
	pending []*State
}

func (h *exploreHooks) OnFork(_, sibling *State) {
	h.pending = append(h.pending, sibling)
}

func (h *exploreHooks) OnSend(*State, uint32, []*expr.Expr) {
	// Single-node exploration has no network; transmissions vanish.
}

func (h *exploreHooks) OnViolation(_ *State, v *Violation) {
	h.report.Violations = append(h.report.Violations, v)
}
