package sde_test

// Depth-horizon partitioning tests: exploration depth as the second
// shard dimension. A work item suspends at each absolute event-count
// horizon and fans its surviving frontier out as continuation items;
// the leaf set must still cover the space exactly, and a lease-granular
// (worker-path) execution must reproduce the in-process report
// bit-for-bit under the same (horizon, fanout) pair.

import (
	"path/filepath"
	"strings"
	"testing"

	"sde"
)

func TestContinuationLabelAndDir(t *testing.T) {
	cases := []struct {
		item  sde.ShardItem
		label string
		dir   string
	}{
		{sde.ShardItem{}, "root", "root"},
		{sde.ShardItem{Cont: []sde.ContStep{{Seg: 0, Of: 2}}}, "root~0/2", "root-c0-2"},
		{sde.ShardItem{Depth: 2, Bits: 1, Cont: []sde.ContStep{{Seg: 1, Of: 2}, {Seg: 0, Of: 1}}},
			"01/2~1/2~0/1", "d2-01-c1-2-c0-1"},
	}
	for _, c := range cases {
		if got := c.item.Label(); got != c.label {
			t.Errorf("Label(%+v) = %q, want %q", c.item, got, c.label)
		}
		if got := c.item.Dir(); got != c.dir {
			t.Errorf("Dir(%+v) = %q, want %q", c.item, got, c.dir)
		}
	}
}

// horizonFor picks a per-algorithm depth horizon small enough that the
// reference workload suspends several times (total events: COB ~1238,
// COW ~163, SDS ~136).
func horizonFor(algo sde.Algorithm) uint64 {
	if algo == sde.COB {
		return 300
	}
	return 50
}

// TestDepthHorizonMatchesPlain: a horizon-partitioned run with zero
// shard bits must represent exactly the plain run's dscenario space, and
// the partition must genuinely fire (suspensions observed, several
// leaves for the sliceable COB frontier).
func TestDepthHorizonMatchesPlain(t *testing.T) {
	for _, algo := range sde.Algorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			scenario := shardScenario(t, algo)
			ref, err := sde.RunScenario(scenario)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
				DepthHorizon: horizonFor(algo),
			})
			if err != nil {
				t.Fatal(err)
			}
			if got.Sched.Suspensions == 0 {
				t.Fatal("no suspensions: the horizon never fired")
			}
			if got.DScenarios().Cmp(ref.DScenarios()) != 0 {
				t.Errorf("dscenarios = %v, want %v", got.DScenarios(), ref.DScenarios())
			}
			if algo == sde.COB && len(got.Shards) < 2 {
				t.Errorf("COB horizon run produced %d leaves, want a real fan-out", len(got.Shards))
			}
			refSet := explodeFingerprints(ref)
			union := map[uint64]bool{}
			for _, sh := range got.Shards {
				for fp := range explodeFingerprints(sh.Report) {
					if union[fp] {
						t.Fatalf("dscenario %x appears in two leaves", fp)
					}
					union[fp] = true
				}
			}
			if len(union) != len(refSet) {
				t.Fatalf("leaf union has %d dscenarios, plain run %d", len(union), len(refSet))
			}
			for fp := range refSet {
				if !union[fp] {
					t.Fatal("leaf union is missing a plain-run dscenario")
				}
			}
		})
	}
}

// TestDepthHorizonDigestDeterministic: the (horizon, fanout) pair defines
// the partition, so two runs with the same pair — whatever the worker
// pool looks like — must produce byte-identical digests.
func TestDepthHorizonDigestDeterministic(t *testing.T) {
	scenario := shardScenario(t, sde.COB)
	cfg := sde.ShardConfig{ShardBits: 1, DepthHorizon: 300}
	a, err := sde.RunScenarioShardedWith(scenario, cfg)
	if err != nil {
		t.Fatal(err)
	}
	da, err := a.Digest(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := sde.RunScenarioShardedWith(scenario, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest(4)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("digest differs across pool sizes:\n  %s\n  %s", da, db)
	}
}

// leaseAllDepth drives the worker path by hand: a queue of work items
// executed through RunShardLease with the coordinator's exact fan-out
// rule (clamp the configured fanout to the suspended frontier's units,
// floor 1), collecting finished leaves for assembly.
func leaseAllDepth(t *testing.T, s sde.Scenario, root string, horizon uint64, fanout int) []sde.ShardLeaf {
	t.Helper()
	type qitem struct {
		item   sde.ShardItem
		target uint64
		parent []byte
	}
	queue := []qitem{{item: sde.ShardItem{}, target: horizon}}
	var leaves []sde.ShardLeaf
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		out, err := sde.RunShardLease(s, q.item, sde.LeaseOptions{
			CheckpointDir: filepath.Join(root, q.item.Dir()),
			EventTarget:   q.target,
			Continuation:  q.parent,
		})
		if err != nil {
			t.Fatalf("lease %s: %v", q.item.Label(), err)
		}
		if !out.Suspended {
			leaves = append(leaves, sde.ShardLeaf{Item: q.item, Snapshot: out.Snapshot})
			continue
		}
		f := fanout
		if f > out.Units {
			f = out.Units
		}
		if f < 1 {
			f = 1
		}
		for seg := 0; seg < f; seg++ {
			cont := append(append([]sde.ContStep(nil), q.item.Cont...), sde.ContStep{Seg: seg, Of: f})
			queue = append(queue, qitem{
				item:   sde.ShardItem{Depth: q.item.Depth, Bits: q.item.Bits, Cont: cont},
				target: out.Events + horizon,
				parent: out.Snapshot,
			})
		}
	}
	return leaves
}

// TestDepthLeaseRoundTrip is the distributed half of the bit-identity
// property for the depth dimension: executing the continuation tree
// lease by lease (the worker path) and assembling the shipped leaves
// must reproduce the in-process horizon-partitioned report's digest.
func TestDepthLeaseRoundTrip(t *testing.T) {
	for _, algo := range []sde.Algorithm{sde.COB, sde.SDS} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			scenario := shardScenario(t, algo)
			horizon := horizonFor(algo)
			ref, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
				DepthHorizon: horizon,
			})
			if err != nil {
				t.Fatal(err)
			}
			refDigest, err := ref.Digest(8)
			if err != nil {
				t.Fatal(err)
			}
			leaves := leaseAllDepth(t, scenario, t.TempDir(), horizon, 2)
			if len(leaves) < 2 && algo == sde.COB {
				t.Fatalf("COB lease tree produced %d leaves, want a fan-out", len(leaves))
			}
			got, err := sde.AssembleSharded(scenario, leaves)
			if err != nil {
				t.Fatal(err)
			}
			gotDigest, err := got.Digest(8)
			if err != nil {
				t.Fatal(err)
			}
			if gotDigest != refDigest {
				t.Fatalf("assembled digest differs from in-process horizon run:\n  %s\n  %s",
					gotDigest, refDigest)
			}
		})
	}
}

// TestDepthHorizonViolationsFound: violations discovered before a
// horizon ride the carrier slice and survive continuation fan-out.
func TestDepthHorizonViolationsFound(t *testing.T) {
	scenario, err := sde.LineCollectScenario(sde.LineCollectOptions{
		K:         3,
		Algorithm: sde.SDS,
		Packets:   2,
		Failures: sde.FailurePlan{
			DropFirst:      map[int]bool{1: true},
			DuplicateFirst: map[int]bool{0: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{DepthHorizon: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got.Sched.Suspensions == 0 {
		t.Fatal("no suspensions: the horizon never fired")
	}
	if len(got.Violations()) != len(ref.Violations()) {
		t.Fatalf("horizon run found %d violations, plain run %d",
			len(got.Violations()), len(ref.Violations()))
	}
}

// TestAssembleShardedRejectsBadContinuationCovers extends the cover
// validation table to the depth dimension.
func TestAssembleShardedRejectsBadContinuationCovers(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	step := func(seg, of int) sde.ContStep { return sde.ContStep{Seg: seg, Of: of} }
	cases := []struct {
		name  string
		items []sde.ShardItem
		want  string
	}{
		{
			name:  "missing continuation slice",
			items: []sde.ShardItem{{Cont: []sde.ContStep{step(0, 2)}}},
			want:  "missing continuation slice",
		},
		{
			name: "duplicate continuation leaf",
			items: []sde.ShardItem{
				{Cont: []sde.ContStep{step(0, 2)}},
				{Cont: []sde.ContStep{step(0, 2)}},
				{Cont: []sde.ContStep{step(1, 2)}},
			},
			want: "twice",
		},
		{
			name: "continuation overlaps its parent",
			items: []sde.ShardItem{
				{},
				{Cont: []sde.ContStep{step(0, 2)}},
				{Cont: []sde.ContStep{step(1, 2)}},
			},
			want: "overlaps",
		},
		{
			name: "dangling deep slice",
			items: []sde.ShardItem{
				{Cont: []sde.ContStep{step(0, 2)}},
				{Cont: []sde.ContStep{step(1, 2), step(0, 2)}},
			},
			want: "missing continuation slice",
		},
		{
			name:  "invalid fan-out",
			items: []sde.ShardItem{{Cont: []sde.ContStep{step(0, 0)}}},
			want:  "fan-out",
		},
		{
			name:  "slice outside fan-out",
			items: []sde.ShardItem{{Cont: []sde.ContStep{step(2, 2)}}},
			want:  "outside [0, 2)",
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			leaves := make([]sde.ShardLeaf, len(c.items))
			for i, it := range c.items {
				leaves[i] = sde.ShardLeaf{Item: it}
			}
			_, err := sde.AssembleSharded(scenario, leaves)
			if err == nil {
				t.Fatalf("bad cover %v accepted", c.items)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestDepthHorizonComposesWithBits: both dimensions at once — bit
// pre-split plus depth horizon — still matches a rerun digest and the
// plain run's dscenario total.
func TestDepthHorizonComposesWithBits(t *testing.T) {
	scenario := shardScenario(t, sde.COB)
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sde.ShardConfig{ShardBits: 2, DepthHorizon: 200, HorizonFanout: 3}
	a, err := sde.RunScenarioShardedWith(scenario, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DScenarios().Cmp(ref.DScenarios()) != 0 {
		t.Errorf("dscenarios = %v, want %v", a.DScenarios(), ref.DScenarios())
	}
	if len(a.Shards) <= 4 {
		t.Errorf("got %d leaves from 4 bit shards + horizon, want more than 4", len(a.Shards))
	}
	da, err := a.Digest(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sde.RunScenarioShardedWith(scenario, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest(4)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("digest not deterministic:\n  %s\n  %s", da, db)
	}
}
