package sde

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"sde/internal/sim"
	"sde/internal/snap"
)

// Lease-granular execution: the building blocks of the multi-process
// exploration service (cmd/sde-serve, cmd/sde-worker, internal/dist).
// The unit of distribution is the same unit the in-process shard
// scheduler uses — a (depth, bits) sub-space of the dscenario partition —
// and the wire payload of a finished lease is the shard's final durable
// checkpoint, so crash recovery and result shipping both fall out of the
// existing snapshot + resume machinery:
//
//   - a worker executes a lease with RunShardLease, checkpointing into a
//     directory; if it crashes, the re-issued lease resumes from that
//     directory (or, without shared storage, re-runs the deterministic
//     shard from scratch) — either way the leaf is bit-identical;
//   - the coordinator collects the leaf checkpoints and rebuilds a full
//     ShardedReport with AssembleSharded, which resumes each finished
//     snapshot in-process (replaying zero events);
//   - Digest canonicalises the observable outputs so "bit-identical to an
//     in-process run" is a string comparison.

// ShardItem identifies one sub-space of the dscenario partition: bit i of
// Bits is the pinned value of the i-th shardable drop decision, Depth
// says how many decisions are pinned. Cont, when non-empty, narrows the
// sub-space along the second shard dimension — exploration depth: each
// ContStep records one depth-horizon suspension of the (depth, bits)
// run's frontier and which slice of the fan-out this item continues. It
// is the exported form of the shard scheduler's work item, and what a
// work lease carries on the wire.
type ShardItem struct {
	Depth int
	Bits  uint64
	Cont  []ContStep `json:",omitempty"`
}

// ContStep is one generation of depth-horizon continuation identity:
// the suspended frontier was partitioned Of ways and this item resumes
// slice Seg. A chain of steps pins the item to one leaf of the
// continuation tree, exactly as (Depth, Bits) pins it to one leaf of the
// failure-decision tree.
type ContStep struct {
	Seg int
	Of  int
}

// maxContFanout bounds one suspension's fan-out; maxContDepth bounds how
// many horizon generations a single item may chain — both are sanity
// limits on wire-supplied items, far above anything a real fleet forms.
const (
	maxContFanout = 4096
	maxContDepth  = 64
)

// Label renders the item for logs: "root" or "bits/depth", with one
// "~seg/of" suffix per continuation generation.
func (it ShardItem) Label() string {
	base := "root"
	if it.Depth != 0 {
		base = fmt.Sprintf("%0*b/%d", it.Depth, it.Bits, it.Depth)
	}
	for _, cs := range it.Cont {
		base += fmt.Sprintf("~%d/%d", cs.Seg, cs.Of)
	}
	return base
}

// Dir names the item's checkpoint subdirectory. The full identity —
// (depth, bits) plus the continuation path — names the sub-space, so a
// re-issued lease finds the crashed worker's snapshot; completed items
// form a prefix-free cover, so directories never collide.
func (it ShardItem) Dir() string {
	base := "root"
	if it.Depth != 0 {
		base = fmt.Sprintf("d%d-%0*b", it.Depth, it.Depth, it.Bits)
	}
	for _, cs := range it.Cont {
		base += fmt.Sprintf("-c%d-%d", cs.Seg, cs.Of)
	}
	return base
}

// validate checks the item against the scenario's shardable set.
func (it ShardItem) validate(s Scenario) error {
	if it.Depth < 0 || it.Depth > s.MaxShardBits() {
		return fmt.Errorf("sde: shard item depth %d outside [0, %d]", it.Depth, s.MaxShardBits())
	}
	if it.Depth < 64 && it.Bits >= 1<<uint(it.Depth) {
		return fmt.Errorf("sde: shard item bits %b wider than depth %d", it.Bits, it.Depth)
	}
	if len(it.Cont) > maxContDepth {
		return fmt.Errorf("sde: shard item chains %d continuations (max %d)", len(it.Cont), maxContDepth)
	}
	for i, cs := range it.Cont {
		if cs.Of < 1 || cs.Of > maxContFanout {
			return fmt.Errorf("sde: continuation step %d fan-out %d outside [1, %d]", i, cs.Of, maxContFanout)
		}
		if cs.Seg < 0 || cs.Seg >= cs.Of {
			return fmt.Errorf("sde: continuation step %d slice %d outside [0, %d)", i, cs.Seg, cs.Of)
		}
	}
	return nil
}

// shardPin maps the item's pinned bits onto the scenario's shardable drop
// decisions (sorted by node id, LSB first).
func (s Scenario) shardPin(it ShardItem) map[string]uint64 {
	armed := sortedShardable(s)
	pin := make(map[string]uint64, it.Depth)
	for bit := 0; bit < it.Depth; bit++ {
		name := fmt.Sprintf("drop_n%d_r0", armed[bit])
		pin[name] = (it.Bits >> uint(bit)) & 1
	}
	return pin
}

// LeaseOptions parameterises RunShardLease.
type LeaseOptions struct {
	// CheckpointDir is where the shard checkpoints and where its final
	// snapshot — the lease's wire payload — is read from. Required.
	CheckpointDir string
	// CheckpointEvery is the checkpoint interval in processed events
	// (0 = the engine default).
	CheckpointEvery int
	// DisableSpeculation and SpecWorkers tune the per-lease speculative
	// solver pipeline (see ShardConfig).
	DisableSpeculation bool
	SpecWorkers        int
	// DisableCompiledIR turns the basic-block compiled fast path off for
	// this lease (see Scenario.WithoutCompiledIR).
	DisableCompiledIR bool
	// EnableMerge turns ITE-based state merging on for this lease (see
	// Scenario.WithMerging). Off by default.
	EnableMerge bool
	// EnableReduce turns symmetry and partial-order reduction on for this
	// lease (see Scenario.WithReduction). The lease's reducer keeps only
	// automorphisms preserving its pinned decisions, so canonicalization
	// stays inside the leased sub-space. Off by default.
	EnableReduce bool
	// Progress, when non-nil, is polled during the run with the live
	// state count and elapsed wall time; returning true stops the run
	// (LeaseOutcome.Stopped) — how a worker honours a straggler re-split
	// or a job cancellation.
	Progress func(states int, elapsed time.Duration) (stop bool)
	// EventTarget, when non-zero, is the depth horizon for this lease as
	// an absolute cumulative processed-event count: the run suspends once
	// the engine's event counter reaches it and live pre-horizon work
	// remains (LeaseOutcome.Suspended). Being absolute — not relative to
	// the lease start — makes the horizon boundaries of a crashed-and-
	// resumed lease land on exactly the same events.
	EventTarget uint64
	// Continuation is the suspended parent frontier for a continuation
	// item (len(it.Cont) > 0): the snapshot shipped by the worker whose
	// lease suspended. The lease resumes slice Cont[last].Seg of the
	// frontier partitioned Cont[last].Of ways, unless CheckpointDir
	// already holds this item's own (crashed or finished) checkpoint,
	// which takes precedence.
	Continuation []byte
}

// LeaseOutcome is the result of one executed work lease.
type LeaseOutcome struct {
	// Stopped: the Progress hook cut the run short; the partial results
	// are not a sound cover of the sub-space and Snapshot is nil.
	Stopped bool
	// Suspended: the run hit its EventTarget depth horizon with live
	// work remaining. Snapshot is then the surviving frontier — the
	// continuation payload the coordinator fans out as new work items —
	// and Units/Events describe how it may be partitioned and where the
	// next horizon sits.
	Suspended bool
	// Units is the number of independently resumable slices the
	// suspended frontier supports (COB: its dscenario count; COW/SDS: 1,
	// since their states share grouping structure). A fan-out wider than
	// Units is unsatisfiable and must be clamped.
	Units int
	// Events is the cumulative processed-event count at suspension; the
	// continuation generation's EventTarget is Events + horizon.
	Events uint64
	// Report is the shard's report (partial when Stopped or Suspended).
	Report *Report
	// Snapshot is the shard's final durable checkpoint — the bytes a
	// worker streams back to the coordinator. For a suspended lease it is
	// the live frontier rather than a finished leaf.
	Snapshot []byte
}

// RunShardLease executes one work lease: the scenario restricted to the
// item's sub-space, checkpointing into opts.CheckpointDir. A directory
// that already holds a checkpoint — a crashed worker's, or a finished
// run's — is resumed, replaying only what the snapshot does not cover;
// resuming a finished leaf replays nothing. This is the worker half of
// the exploration service.
func RunShardLease(s Scenario, it ShardItem, opts LeaseOptions) (*LeaseOutcome, error) {
	if err := it.validate(s); err != nil {
		return nil, err
	}
	if opts.CheckpointDir == "" {
		return nil, fmt.Errorf("sde: RunShardLease needs a checkpoint directory")
	}
	if opts.SpecWorkers < 0 {
		return nil, fmt.Errorf("sde: SpecWorkers must be >= 0 (got %d)", opts.SpecWorkers)
	}
	shard := s
	cfg := s.cfg
	cfg.Pin = s.shardPin(it)
	cfg.Progress = opts.Progress
	cfg.CheckpointEvery = opts.CheckpointEvery
	cfg.EventBudget = opts.EventTarget
	cfg.DisableSpeculation = opts.DisableSpeculation
	cfg.SpecWorkers = opts.SpecWorkers
	cfg.DisableCompiledIR = cfg.DisableCompiledIR || opts.DisableCompiledIR
	cfg.EnableMerge = cfg.EnableMerge || opts.EnableMerge
	cfg.EnableReduce = cfg.EnableReduce || opts.EnableReduce
	shard.cfg = cfg
	shard.desc = fmt.Sprintf("%s [shard %s]", s.desc, it.Label())
	report, suspend, err := runShardItem(shard, opts.CheckpointDir, it.Cont, opts.Continuation)
	if err != nil {
		return nil, err
	}
	scrubRunHooks(report)
	if report.Stopped() {
		return &LeaseOutcome{Stopped: true, Report: report}, nil
	}
	if report.Suspended() {
		return &LeaseOutcome{
			Suspended: true,
			Units:     report.res.SuspendUnits,
			Events:    report.res.Events,
			Report:    report,
			Snapshot:  suspend,
		}, nil
	}
	data, err := snap.LoadBytes(opts.CheckpointDir)
	if err != nil {
		return nil, fmt.Errorf("sde: reading leaf checkpoint: %w", err)
	}
	return &LeaseOutcome{Report: report, Snapshot: data}, nil
}

// runShardItem executes one shard work item with direct engine access:
// fresh, resumed from the item's own checkpoint in dir, or — for a
// continuation item with no checkpoint of its own yet — resumed as slice
// cont[last].Seg of the parent frontier partitioned cont[last].Of ways.
// It returns the report plus, when the run suspended at its depth
// horizon, the continuation snapshot bytes.
func runShardItem(shard Scenario, dir string, cont []ContStep, parent []byte) (*Report, []byte, error) {
	if dir != "" {
		shard = shard.WithCheckpoints(dir, shard.cfg.CheckpointEvery)
	}
	cfg := shard.cfg
	var eng *sim.Engine
	var err error
	if dir != "" {
		data, lerr := snap.LoadBytes(dir)
		switch {
		case lerr == nil:
			eng, err = sim.ResumeEngine(cfg, data)
		case errors.Is(lerr, snap.ErrNoCheckpoint):
			eng, err = newShardEngine(cfg, cont, parent)
		default:
			return nil, nil, fmt.Errorf("sde: %w", lerr)
		}
	} else {
		eng, err = newShardEngine(cfg, cont, parent)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("sde: %w", err)
	}
	res, err := eng.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("sde: %w", err)
	}
	report := &Report{res: res, scenario: shard}
	var suspend []byte
	if res.Suspended {
		if dir != "" {
			// Run's final checkpoint write is the continuation payload.
			suspend, err = snap.LoadBytes(dir)
		} else {
			var sp *snap.Snapshot
			sp, err = eng.Snapshot()
			if err == nil {
				suspend, err = sp.Encode(eng.Ctx().Exprs)
			}
		}
		if err != nil {
			return nil, nil, fmt.Errorf("sde: continuation snapshot: %w", err)
		}
	}
	return report, suspend, nil
}

// newShardEngine builds the engine for an item starting from scratch: a
// plain fresh engine, or a slice of the shipped parent frontier for a
// continuation item.
func newShardEngine(cfg sim.Config, cont []ContStep, parent []byte) (*sim.Engine, error) {
	if len(cont) == 0 {
		return sim.NewEngine(cfg)
	}
	if len(parent) == 0 {
		return nil, fmt.Errorf("sde: continuation item without a parent frontier")
	}
	last := cont[len(cont)-1]
	return sim.ResumeEngineSlice(cfg, parent, last.Seg, last.Of)
}

// scrubRunHooks removes run-time hooks from a report's stored scenario: a
// replay through the report must not be stopped by a stale progress hook
// or event budget, write into a shared cache, or overwrite the shard's
// checkpoint.
func scrubRunHooks(r *Report) {
	r.scenario.cfg.Progress = nil
	r.scenario.cfg.SharedSolverCache = nil
	r.scenario.cfg.CheckpointDir = ""
	r.scenario.cfg.CheckpointEvery = 0
	r.scenario.cfg.EventBudget = 0
}

// ShardLeaf is one completed leaf of a distributed run: the item and its
// final checkpoint as shipped over the wire.
type ShardLeaf struct {
	Item     ShardItem
	Snapshot []byte
}

// AssembleSharded rebuilds a full ShardedReport from shipped shard-leaf
// checkpoints: each snapshot is resumed in-process (replaying zero
// events, since leaves are finished runs) and the reports are ordered and
// aggregated exactly as RunScenarioShardedWith orders an in-process run —
// so a distributed run's report is bit-identical to a local one. The
// leaves must form a prefix-free cover of the shard space (the set of
// completed items of any run does); gaps and overlaps are rejected rather
// than silently under- or double-counted.
func AssembleSharded(s Scenario, leaves []ShardLeaf) (*ShardedReport, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("sde: no shard leaves to assemble")
	}
	items := make([]ShardItem, len(leaves))
	for i, leaf := range leaves {
		if err := leaf.Item.validate(s); err != nil {
			return nil, err
		}
		items[i] = leaf.Item
	}
	if err := verifyCover(items); err != nil {
		return nil, err
	}
	results := make([]leafResult, 0, len(leaves))
	for _, leaf := range leaves {
		pin := s.shardPin(leaf.Item)
		shard := s
		cfg := s.cfg
		cfg.Pin = pin
		shard.cfg = cfg
		eng, err := sim.ResumeEngine(shard.cfg, leaf.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("sde: shard %s: %w", leaf.Item.Label(), err)
		}
		res, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("sde: shard %s: %w", leaf.Item.Label(), err)
		}
		results = append(results, leafResult{
			item:   workItem{depth: leaf.Item.Depth, bits: leaf.Item.Bits, cont: leaf.Item.Cont},
			pin:    pin,
			report: &Report{res: res, scenario: shard},
		})
	}
	return finalizeSharded(s, results, SchedStats{Resumed: len(results)}), nil
}

// verifyCover checks that the items are a prefix-free, exact cover of the
// two-dimensional shard space. Phase 1 telescopes each (depth, bits)
// base's continuation tree: a suspended run's fan-out produced exactly one
// item per slice, so merging sibling slices bottom-up must collapse each
// base to a single item with an empty continuation path. Phase 2 then
// telescopes the failure-decision tree exactly as before: merging sibling
// bit sub-spaces bottom-up must reach the root exactly once.
func verifyCover(items []ShardItem) error {
	type base struct {
		depth int
		bits  uint64
	}
	// conts[b] maps contKey(path) -> path for every item of base b still
	// uncollapsed.
	conts := make(map[base]map[string][]ContStep)
	for _, it := range items {
		if it.Depth > 62 {
			return fmt.Errorf("sde: shard item depth %d too deep to verify", it.Depth)
		}
		b := base{it.Depth, it.Bits}
		if conts[b] == nil {
			conts[b] = make(map[string][]ContStep)
		}
		key := contKey(it.Cont)
		if _, dup := conts[b][key]; dup {
			return fmt.Errorf("sde: shard %s appears twice", it.Label())
		}
		conts[b][key] = it.Cont
	}
	// Phase 1: collapse each base's continuation leaves to the empty path.
	maxDepth := 0
	set := make(map[base]bool, len(conts))
	for b, paths := range conts {
		if err := collapseContinuations(ShardItem{Depth: b.depth, Bits: b.bits}, paths); err != nil {
			return err
		}
		set[b] = true
		if b.depth > maxDepth {
			maxDepth = b.depth
		}
	}
	// Phase 2: bit telescoping over the collapsed bases.
	for depth := maxDepth; depth > 0; depth-- {
		for b := range set {
			if b.depth != depth {
				continue
			}
			sibling := base{depth, b.bits ^ 1<<uint(depth-1)}
			if !set[sibling] {
				return fmt.Errorf("sde: shard cover is missing the sibling of %s",
					ShardItem{Depth: b.depth, Bits: b.bits}.Label())
			}
			delete(set, b)
			delete(set, sibling)
			parent := base{depth - 1, b.bits &^ (1 << uint(depth-1))}
			if set[parent] {
				return fmt.Errorf("sde: shard %s overlaps its covering prefix %s",
					ShardItem{Depth: b.depth, Bits: b.bits}.Label(),
					ShardItem{Depth: parent.depth, Bits: parent.bits}.Label())
			}
			set[parent] = true
		}
	}
	if !set[base{}] || len(set) != 1 {
		return fmt.Errorf("sde: shard leaves do not cover the space")
	}
	return nil
}

// collapseContinuations telescopes one base's continuation paths to the
// empty path in place: for each path of maximal length, all Of siblings of
// its last step must be present; they merge into their common prefix.
// Anything left over — a missing sibling, or an item that is a prefix of
// another (an overlap: the parent covers everything its slices do) — is an
// invalid cover.
func collapseContinuations(b ShardItem, paths map[string][]ContStep) error {
	maxLen := 0
	for _, p := range paths {
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	for l := maxLen; l > 0; l-- {
		level := make([][]ContStep, 0, len(paths))
		for _, p := range paths {
			if len(p) == l {
				level = append(level, p)
			}
		}
		for _, p := range level {
			if _, still := paths[contKey(p)]; !still {
				continue // merged as a sibling of an earlier path this level
			}
			last := p[len(p)-1]
			sib := append([]ContStep(nil), p...)
			for seg := 0; seg < last.Of; seg++ {
				sib[len(sib)-1] = ContStep{Seg: seg, Of: last.Of}
				if _, ok := paths[contKey(sib)]; !ok {
					b.Cont = sib
					return fmt.Errorf("sde: shard cover is missing continuation slice %s", b.Label())
				}
			}
			for seg := 0; seg < last.Of; seg++ {
				sib[len(sib)-1] = ContStep{Seg: seg, Of: last.Of}
				delete(paths, contKey(sib))
			}
			parent := p[:len(p)-1]
			if _, overlap := paths[contKey(parent)]; overlap {
				b.Cont = p
				lbl := b.Label()
				b.Cont = parent
				return fmt.Errorf("sde: shard %s overlaps its covering continuation %s", lbl, b.Label())
			}
			paths[contKey(parent)] = append([]ContStep(nil), parent...)
		}
	}
	if _, root := paths[contKey(nil)]; !root || len(paths) != 1 {
		b.Cont = nil
		return fmt.Errorf("sde: continuation leaves of shard %s do not cover its frontier", b.Label())
	}
	return nil
}

// contKey canonicalises a continuation path for map keying.
func contKey(path []ContStep) string {
	if len(path) == 0 {
		return ""
	}
	var sb []byte
	for _, cs := range path {
		sb = fmt.Appendf(sb, "%d/%d;", cs.Seg, cs.Of)
	}
	return string(sb)
}

// Digest canonicalises the report's observable outputs — per-shard pins,
// state counts, dscenario counts and fingerprints, violations, and up to
// testCases concrete test cases per shard — into a SHA-256 hex string.
// Two runs of the same scenario agree on the digest iff they agree on
// every one of those outputs, so "the distributed run is bit-identical to
// the in-process run" is a string comparison. Both sides must use the
// same testCases limit. Scheduling telemetry, wall times, and
// descriptions are deliberately excluded: they may legitimately differ.
func (r *ShardedReport) Digest(testCases int) (string, error) {
	h := sha256.New()
	for i, sh := range r.Shards {
		fmt.Fprintf(h, "shard %d\n", i)
		writeSortedPin(h, sh.Pin)
		rep := sh.Report
		fmt.Fprintf(h, "states %d\n", rep.States())
		fmt.Fprintf(h, "groups %d\n", rep.Groups())
		fmt.Fprintf(h, "dscenarios %s\n", rep.DScenarios().String())
		writeDScenarioFingerprints(h, rep)
		for _, v := range rep.Violations() {
			fmt.Fprintf(h, "violation node=%d t=%d msg=%q\n", v.Node, v.Time, v.Msg)
			writeSortedPin(h, v.Model)
		}
		if testCases != 0 {
			tcs, err := rep.TestCases(testCases)
			if err != nil {
				return "", fmt.Errorf("sde: digest: %w", err)
			}
			for _, tc := range tcs {
				fmt.Fprintf(h, "testcase %d\n", tc.Index)
				for _, name := range tc.Vars() {
					fmt.Fprintf(h, "  %s=%d\n", name, tc.Inputs[name])
				}
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func writeSortedPin(w io.Writer, m map[string]uint64) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %s=%d\n", name, m[name])
	}
}

// writeDScenarioFingerprints hashes each represented dscenario — the
// FNV-1a of its per-node state fingerprints — in sorted order, the same
// canonicalisation the sharded-equivalence tests use.
func writeDScenarioFingerprints(w io.Writer, rep *Report) {
	fps := make([]uint64, 0, 64)
	for _, sc := range rep.res.Mapper.Explode(0) {
		fp := uint64(14695981039346656037)
		for _, s := range sc {
			fp ^= s.Fingerprint()
			fp *= 1099511628211
		}
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		fmt.Fprintf(w, "fp %016x\n", fp)
	}
}

// sortedShardable returns the scenario's shardable nodes in pinning
// order (ascending node id).
func sortedShardable(s Scenario) []int {
	armed := append([]int(nil), s.shardable...)
	sort.Ints(armed)
	return armed
}
