package sde

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"time"

	"sde/internal/sim"
	"sde/internal/snap"
)

// Lease-granular execution: the building blocks of the multi-process
// exploration service (cmd/sde-serve, cmd/sde-worker, internal/dist).
// The unit of distribution is the same unit the in-process shard
// scheduler uses — a (depth, bits) sub-space of the dscenario partition —
// and the wire payload of a finished lease is the shard's final durable
// checkpoint, so crash recovery and result shipping both fall out of the
// existing snapshot + resume machinery:
//
//   - a worker executes a lease with RunShardLease, checkpointing into a
//     directory; if it crashes, the re-issued lease resumes from that
//     directory (or, without shared storage, re-runs the deterministic
//     shard from scratch) — either way the leaf is bit-identical;
//   - the coordinator collects the leaf checkpoints and rebuilds a full
//     ShardedReport with AssembleSharded, which resumes each finished
//     snapshot in-process (replaying zero events);
//   - Digest canonicalises the observable outputs so "bit-identical to an
//     in-process run" is a string comparison.

// ShardItem identifies one sub-space of the dscenario partition: bit i of
// Bits is the pinned value of the i-th shardable drop decision, Depth
// says how many decisions are pinned. It is the exported form of the
// shard scheduler's work item, and what a work lease carries on the wire.
type ShardItem struct {
	Depth int
	Bits  uint64
}

// Label renders the item for logs: "root" or "bits/depth".
func (it ShardItem) Label() string {
	if it.Depth == 0 {
		return "root"
	}
	return fmt.Sprintf("%0*b/%d", it.Depth, it.Bits, it.Depth)
}

// Dir names the item's checkpoint subdirectory. The (depth, bits) pair
// identifies the sub-space, so a re-issued lease finds the crashed
// worker's snapshot; completed items form a prefix-free cover, so
// directories never collide.
func (it ShardItem) Dir() string {
	if it.Depth == 0 {
		return "root"
	}
	return fmt.Sprintf("d%d-%0*b", it.Depth, it.Depth, it.Bits)
}

// validate checks the item against the scenario's shardable set.
func (it ShardItem) validate(s Scenario) error {
	if it.Depth < 0 || it.Depth > s.MaxShardBits() {
		return fmt.Errorf("sde: shard item depth %d outside [0, %d]", it.Depth, s.MaxShardBits())
	}
	if it.Depth < 64 && it.Bits >= 1<<uint(it.Depth) {
		return fmt.Errorf("sde: shard item bits %b wider than depth %d", it.Bits, it.Depth)
	}
	return nil
}

// shardPin maps the item's pinned bits onto the scenario's shardable drop
// decisions (sorted by node id, LSB first).
func (s Scenario) shardPin(it ShardItem) map[string]uint64 {
	armed := sortedShardable(s)
	pin := make(map[string]uint64, it.Depth)
	for bit := 0; bit < it.Depth; bit++ {
		name := fmt.Sprintf("drop_n%d_r0", armed[bit])
		pin[name] = (it.Bits >> uint(bit)) & 1
	}
	return pin
}

// LeaseOptions parameterises RunShardLease.
type LeaseOptions struct {
	// CheckpointDir is where the shard checkpoints and where its final
	// snapshot — the lease's wire payload — is read from. Required.
	CheckpointDir string
	// CheckpointEvery is the checkpoint interval in processed events
	// (0 = the engine default).
	CheckpointEvery int
	// DisableSpeculation and SpecWorkers tune the per-lease speculative
	// solver pipeline (see ShardConfig).
	DisableSpeculation bool
	SpecWorkers        int
	// DisableCompiledIR turns the basic-block compiled fast path off for
	// this lease (see Scenario.WithoutCompiledIR).
	DisableCompiledIR bool
	// EnableMerge turns ITE-based state merging on for this lease (see
	// Scenario.WithMerging). Off by default.
	EnableMerge bool
	// EnableReduce turns symmetry and partial-order reduction on for this
	// lease (see Scenario.WithReduction). The lease's reducer keeps only
	// automorphisms preserving its pinned decisions, so canonicalization
	// stays inside the leased sub-space. Off by default.
	EnableReduce bool
	// Progress, when non-nil, is polled during the run with the live
	// state count and elapsed wall time; returning true stops the run
	// (LeaseOutcome.Stopped) — how a worker honours a straggler re-split
	// or a job cancellation.
	Progress func(states int, elapsed time.Duration) (stop bool)
}

// LeaseOutcome is the result of one executed work lease.
type LeaseOutcome struct {
	// Stopped: the Progress hook cut the run short; the partial results
	// are not a sound cover of the sub-space and Snapshot is nil.
	Stopped bool
	// Report is the shard's report (partial when Stopped).
	Report *Report
	// Snapshot is the shard's final durable checkpoint — the bytes a
	// worker streams back to the coordinator.
	Snapshot []byte
}

// RunShardLease executes one work lease: the scenario restricted to the
// item's sub-space, checkpointing into opts.CheckpointDir. A directory
// that already holds a checkpoint — a crashed worker's, or a finished
// run's — is resumed, replaying only what the snapshot does not cover;
// resuming a finished leaf replays nothing. This is the worker half of
// the exploration service.
func RunShardLease(s Scenario, it ShardItem, opts LeaseOptions) (*LeaseOutcome, error) {
	if err := it.validate(s); err != nil {
		return nil, err
	}
	if opts.CheckpointDir == "" {
		return nil, fmt.Errorf("sde: RunShardLease needs a checkpoint directory")
	}
	if opts.SpecWorkers < 0 {
		return nil, fmt.Errorf("sde: SpecWorkers must be >= 0 (got %d)", opts.SpecWorkers)
	}
	shard := s
	cfg := s.cfg
	cfg.Pin = s.shardPin(it)
	cfg.Progress = opts.Progress
	cfg.CheckpointEvery = opts.CheckpointEvery
	cfg.DisableSpeculation = opts.DisableSpeculation
	cfg.SpecWorkers = opts.SpecWorkers
	cfg.DisableCompiledIR = cfg.DisableCompiledIR || opts.DisableCompiledIR
	cfg.EnableMerge = cfg.EnableMerge || opts.EnableMerge
	cfg.EnableReduce = cfg.EnableReduce || opts.EnableReduce
	shard.cfg = cfg
	shard.desc = fmt.Sprintf("%s [shard %s]", s.desc, it.Label())
	report, err := runOrResume(shard, opts.CheckpointDir)
	if err != nil {
		return nil, err
	}
	scrubRunHooks(report)
	if report.Stopped() {
		return &LeaseOutcome{Stopped: true, Report: report}, nil
	}
	data, err := snap.LoadBytes(opts.CheckpointDir)
	if err != nil {
		return nil, fmt.Errorf("sde: reading leaf checkpoint: %w", err)
	}
	return &LeaseOutcome{Report: report, Snapshot: data}, nil
}

// scrubRunHooks removes run-time hooks from a report's stored scenario: a
// replay through the report must not be stopped by a stale progress hook,
// write into a shared cache, or overwrite the shard's checkpoint.
func scrubRunHooks(r *Report) {
	r.scenario.cfg.Progress = nil
	r.scenario.cfg.SharedSolverCache = nil
	r.scenario.cfg.CheckpointDir = ""
	r.scenario.cfg.CheckpointEvery = 0
}

// ShardLeaf is one completed leaf of a distributed run: the item and its
// final checkpoint as shipped over the wire.
type ShardLeaf struct {
	Item     ShardItem
	Snapshot []byte
}

// AssembleSharded rebuilds a full ShardedReport from shipped shard-leaf
// checkpoints: each snapshot is resumed in-process (replaying zero
// events, since leaves are finished runs) and the reports are ordered and
// aggregated exactly as RunScenarioShardedWith orders an in-process run —
// so a distributed run's report is bit-identical to a local one. The
// leaves must form a prefix-free cover of the shard space (the set of
// completed items of any run does); gaps and overlaps are rejected rather
// than silently under- or double-counted.
func AssembleSharded(s Scenario, leaves []ShardLeaf) (*ShardedReport, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("sde: no shard leaves to assemble")
	}
	items := make([]ShardItem, len(leaves))
	for i, leaf := range leaves {
		if err := leaf.Item.validate(s); err != nil {
			return nil, err
		}
		items[i] = leaf.Item
	}
	if err := verifyCover(items); err != nil {
		return nil, err
	}
	results := make([]leafResult, 0, len(leaves))
	for _, leaf := range leaves {
		pin := s.shardPin(leaf.Item)
		shard := s
		cfg := s.cfg
		cfg.Pin = pin
		shard.cfg = cfg
		eng, err := sim.ResumeEngine(shard.cfg, leaf.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("sde: shard %s: %w", leaf.Item.Label(), err)
		}
		res, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("sde: shard %s: %w", leaf.Item.Label(), err)
		}
		results = append(results, leafResult{
			item:   workItem{depth: leaf.Item.Depth, bits: leaf.Item.Bits},
			pin:    pin,
			report: &Report{res: res, scenario: shard},
		})
	}
	return finalizeSharded(s, results, SchedStats{Resumed: len(results)}), nil
}

// verifyCover checks that the items are a prefix-free, exact cover of the
// shard space: merging sibling sub-spaces bottom-up must telescope to the
// root exactly once.
func verifyCover(items []ShardItem) error {
	maxDepth := 0
	set := make(map[ShardItem]bool, len(items))
	for _, it := range items {
		if it.Depth > 62 {
			return fmt.Errorf("sde: shard item depth %d too deep to verify", it.Depth)
		}
		if set[it] {
			return fmt.Errorf("sde: shard %s appears twice", it.Label())
		}
		set[it] = true
		if it.Depth > maxDepth {
			maxDepth = it.Depth
		}
	}
	for depth := maxDepth; depth > 0; depth-- {
		for it := range set {
			if it.Depth != depth {
				continue
			}
			sibling := ShardItem{Depth: depth, Bits: it.Bits ^ 1<<uint(depth-1)}
			if !set[sibling] {
				return fmt.Errorf("sde: shard cover is missing the sibling of %s", it.Label())
			}
			delete(set, it)
			delete(set, sibling)
			parent := ShardItem{Depth: depth - 1, Bits: it.Bits &^ (1 << uint(depth-1))}
			if set[parent] {
				return fmt.Errorf("sde: shard %s overlaps its covering prefix %s",
					it.Label(), parent.Label())
			}
			set[parent] = true
		}
	}
	if !set[ShardItem{}] || len(set) != 1 {
		return fmt.Errorf("sde: shard leaves do not cover the space")
	}
	return nil
}

// Digest canonicalises the report's observable outputs — per-shard pins,
// state counts, dscenario counts and fingerprints, violations, and up to
// testCases concrete test cases per shard — into a SHA-256 hex string.
// Two runs of the same scenario agree on the digest iff they agree on
// every one of those outputs, so "the distributed run is bit-identical to
// the in-process run" is a string comparison. Both sides must use the
// same testCases limit. Scheduling telemetry, wall times, and
// descriptions are deliberately excluded: they may legitimately differ.
func (r *ShardedReport) Digest(testCases int) (string, error) {
	h := sha256.New()
	for i, sh := range r.Shards {
		fmt.Fprintf(h, "shard %d\n", i)
		writeSortedPin(h, sh.Pin)
		rep := sh.Report
		fmt.Fprintf(h, "states %d\n", rep.States())
		fmt.Fprintf(h, "groups %d\n", rep.Groups())
		fmt.Fprintf(h, "dscenarios %s\n", rep.DScenarios().String())
		writeDScenarioFingerprints(h, rep)
		for _, v := range rep.Violations() {
			fmt.Fprintf(h, "violation node=%d t=%d msg=%q\n", v.Node, v.Time, v.Msg)
			writeSortedPin(h, v.Model)
		}
		if testCases != 0 {
			tcs, err := rep.TestCases(testCases)
			if err != nil {
				return "", fmt.Errorf("sde: digest: %w", err)
			}
			for _, tc := range tcs {
				fmt.Fprintf(h, "testcase %d\n", tc.Index)
				for _, name := range tc.Vars() {
					fmt.Fprintf(h, "  %s=%d\n", name, tc.Inputs[name])
				}
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func writeSortedPin(w io.Writer, m map[string]uint64) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %s=%d\n", name, m[name])
	}
}

// writeDScenarioFingerprints hashes each represented dscenario — the
// FNV-1a of its per-node state fingerprints — in sorted order, the same
// canonicalisation the sharded-equivalence tests use.
func writeDScenarioFingerprints(w io.Writer, rep *Report) {
	fps := make([]uint64, 0, 64)
	for _, sc := range rep.res.Mapper.Explode(0) {
		fp := uint64(14695981039346656037)
		for _, s := range sc {
			fp ^= s.Fingerprint()
			fp *= 1099511628211
		}
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		fmt.Fprintf(w, "fp %016x\n", fp)
	}
}

// sortedShardable returns the scenario's shardable nodes in pinning
// order (ascending node id).
func sortedShardable(s Scenario) []int {
	armed := append([]int(nil), s.shardable...)
	sort.Ints(armed)
	return armed
}
