package sde_test

// Symmetry-reduction tests at the public API level: the Scenario knob,
// and reduction under sharding — each shard canonicalizes only inside
// its pinned sub-space, and the aggregated report must still recover
// the full violation set, with synthesized orbit twins deduplicated
// across leaves.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"sde"
	"sde/internal/expr"
	"sde/internal/vm"
)

// reduceFloodScenario builds a 3x3 grid flood with a duplicate-beacon
// assertion: the center originates one beacon at t=1 (marking itself as
// served), every node relays its first reception, and a second reception
// is a violation. Symbolic first-reception drops are armed on the
// center's edge ring {1, 3, 5, 7} — a full orbit of the dihedral group
// that survives stabilization by the declared center label — and the
// violation times depend on which ring nodes dropped, so reduced runs
// must synthesize some violations back from pruned orbit members.
func reduceFloodScenario(t *testing.T) sde.Scenario {
	t.Helper()
	const (
		addrRole = 0x40
		addrSeen = 0x20
		txBuf    = 0x100
	)
	b := sde.NewProgramBuilder()

	boot := b.Func("boot")
	boot.MovI(sde.R3, 0)
	boot.Load(sde.R1, sde.R3, addrRole)
	boot.BrZ(sde.R1, "silent")
	boot.Timer("bcast", sde.R1, sde.R0)
	boot.Label("silent")
	boot.Ret()

	bcast := b.Func("bcast")
	bcast.MovI(sde.R3, 0)
	bcast.MovI(sde.R5, 1)
	bcast.Store(sde.R3, addrSeen, sde.R5)
	bcast.MovI(sde.R4, txBuf)
	bcast.MovI(sde.R5, 0xF100)
	bcast.Store(sde.R4, 0, sde.R5)
	bcast.MovI(sde.R6, sde.BroadcastAddr)
	bcast.Send(sde.R6, sde.R4, 1)
	bcast.Ret()

	recv := b.Func("on_recv")
	recv.MovI(sde.R3, 0)
	recv.Load(sde.R4, sde.R3, addrSeen)
	recv.AddI(sde.R4, sde.R4, 1)
	recv.Store(sde.R3, addrSeen, sde.R4)
	recv.NeI(sde.R5, sde.R4, 2)
	recv.Assert(sde.R5, "flood: duplicate beacon")
	recv.EqI(sde.R6, sde.R4, 1)
	recv.BrZ(sde.R6, "norelay")
	recv.MovI(sde.R7, txBuf)
	recv.MovI(sde.R8, 0xF100)
	recv.Store(sde.R7, 0, sde.R8)
	recv.MovI(sde.R9, sde.BroadcastAddr)
	recv.Send(sde.R9, sde.R7, 1)
	recv.Label("norelay")
	recv.Ret()

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	const center = 4
	labels := make([]uint64, 9)
	labels[center] = 1
	scenario, err := sde.CustomScenario("3x3 reduction flood", sde.CustomConfig{
		Topology:       sde.Grid(3, 3),
		Program:        prog,
		Algorithm:      sde.COB,
		HorizonTicks:   14,
		Failures:       sde.FailurePlan{DropFirst: sde.NodeSet([]int{1, 3, 5, 7})},
		ShardableNodes: []int{1, 3, 5, 7},
		NodeInit: func(node int, s *vm.State, eb *expr.Builder) {
			if node == center {
				s.StoreWord(addrRole, eb.Const(1, vm.WordBits))
			}
		},
		Symmetry: &sde.SymmetrySpec{Labels: labels},
	})
	if err != nil {
		t.Fatal(err)
	}
	return scenario
}

// violationTriples projects violations to the set of distinct
// (node, time, msg) triples — the observable reduction preserves.
func violationTriples(vs []*sde.Violation) map[string]bool {
	set := make(map[string]bool, len(vs))
	for _, v := range vs {
		set[fmt.Sprintf("%d/%d/%s", v.Node, v.Time, v.Msg)] = true
	}
	return set
}

// TestShardedReduction: a sharded run with reduction enabled in every
// shard must recover exactly the violation set of an unsharded,
// unreduced run. Each shard's reducer works with the group stabilized by
// the shard's pins, and the aggregated report deduplicates the
// synthesized orbit twins the leaves re-report.
func TestShardedReduction(t *testing.T) {
	scenario := reduceFloodScenario(t)
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	refSet := violationTriples(ref.Violations())
	if len(refSet) == 0 {
		t.Fatal("reference run produced no violations; the oracle proves nothing")
	}

	reduced, err := sde.RunScenario(scenario.WithReduction())
	if err != nil {
		t.Fatal(err)
	}
	if rs := reduced.ReduceStats(); rs.Pins == 0 {
		t.Errorf("unsharded reduced run pinned nothing: %+v", rs)
	}

	for _, bits := range []int{1, 2} {
		sharded, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
			ShardBits:    bits,
			EnableReduce: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if aborted, reason := sharded.Aborted(); aborted {
			t.Fatalf("bits=%d: aborted: %s", bits, reason)
		}
		got := violationTriples(sharded.Violations())
		for k := range refSet {
			if !got[k] {
				t.Errorf("bits=%d: violation %s missing", bits, k)
			}
		}
		for k := range got {
			if !refSet[k] {
				t.Errorf("bits=%d: violation %s is spurious", bits, k)
			}
		}
		// The aggregated violation list must not carry duplicate
		// synthesized triples: a triple synthesized by several leaves is
		// reported once, and never alongside an observed copy.
		seenSynth := map[string]bool{}
		for _, v := range sharded.Violations() {
			if !v.Synthesized {
				continue
			}
			k := fmt.Sprintf("%d/%d/%s", v.Node, v.Time, v.Msg)
			if seenSynth[k] {
				t.Errorf("bits=%d: synthesized violation %s reported twice", bits, k)
			}
			seenSynth[k] = true
		}
	}
}

// TestReducedReportJSON: the JSON projection of a reduced run carries
// the reduction counters and distinguishes synthesized violations from
// observed ones, so external tooling can tell replayed evidence from
// orbit closure.
func TestReducedReportJSON(t *testing.T) {
	scenario := reduceFloodScenario(t)
	report, err := sde.RunScenario(scenario.WithReduction())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, 0); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded sde.ReportJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	rs := report.ReduceStats()
	if decoded.ReducePins != rs.Pins || decoded.ReduceChecks != rs.Checks {
		t.Errorf("JSON reduce counters = pins %d checks %d, want %d/%d",
			decoded.ReducePins, decoded.ReduceChecks, rs.Pins, rs.Checks)
	}
	if decoded.Synthesized != rs.Synthesized {
		t.Errorf("JSON synthesized_violations = %d, want %d", decoded.Synthesized, rs.Synthesized)
	}
	synth, observed := 0, 0
	for _, v := range decoded.Violations {
		if v.Synthesized {
			synth++
		} else {
			observed++
		}
	}
	if synth != rs.Synthesized {
		t.Errorf("JSON carries %d synthesized violations, stats say %d", synth, rs.Synthesized)
	}
	if synth == 0 || observed == 0 {
		t.Errorf("want both synthesized (%d) and observed (%d) violations in JSON", synth, observed)
	}
}
