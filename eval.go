package sde

import (
	"fmt"
	"math/big"
	"path/filepath"
	"strings"
	"time"

	"sde/internal/metrics"
)

// EvalRow is one line of the paper's evaluation: one algorithm on one
// scenario (Table I rows; Figure 10 curves via Samples).
type EvalRow struct {
	Algorithm   Algorithm
	Nodes       int
	Runtime     time.Duration
	States      int
	MemBytes    int64
	PeakMem     int64
	DScenarios  *big.Int
	Instrs      uint64
	Aborted     bool
	AbortReason string
	Samples     []Sample
}

// EvalOptions parameterises an evaluation sweep.
type EvalOptions struct {
	// Packets per run (default 10, the paper's one-per-second for 10 s).
	Packets uint32
	// DropNodes selects the symbolic-drop node set (default DropRoute).
	DropNodes DropSelection
	// MaxDropNodes caps the armed node count (see GridCollectOptions).
	MaxDropNodes int
	// Caps per algorithm; a missing entry means uncapped. The paper
	// capped COB at ~40 GB of RAM.
	Caps map[Algorithm]Caps
	// SampleEvery takes a metrics sample every n events (default 64).
	SampleEvery int
	// Algorithms to run (default all three, in the paper's order).
	Algorithms []Algorithm
	// CheckpointDir, when non-empty, makes the sweep durable: each run
	// checkpoints into its own subdirectory (grid<dim>-<algo>) and a
	// rerun resumes finished or interrupted runs instead of repeating
	// them.
	CheckpointDir string
}

// DefaultEvalOptions returns the calibrated evaluation configuration for
// one of the paper's grid sizes (5, 7, or 10), scaled to a single-core
// laptop budget while preserving the paper's result shape:
//
//   - 25 nodes: drops on the data path only; every algorithm finishes
//     (Figure 10a/b shows COB finishing on the smallest scenario).
//   - 49 and 100 nodes: drops on the data path and its neighbours (the
//     paper's full §IV-A setup); COB hits its state cap and is reported
//     as aborted, exactly like the paper's Table I run, while COW and SDS
//     finish.
//
// The source emits 3 packets instead of the paper's 10 so a full sweep
// completes in seconds-to-minutes on one core; pass your own EvalOptions
// (e.g. Packets: 10 and larger caps) for paper-scale runs.
func DefaultEvalOptions(dim int) EvalOptions {
	opts := EvalOptions{
		Packets:     3,
		SampleEvery: 32,
		Caps: map[Algorithm]Caps{
			COB: {MaxWall: 10 * time.Minute},
			COW: {MaxWall: 10 * time.Minute},
			SDS: {MaxWall: 10 * time.Minute},
		},
	}
	switch {
	case dim <= 5:
		opts.DropNodes = DropRoute
	case dim <= 7:
		opts.DropNodes = DropRouteAndNeighbors
		opts.Caps[COB] = Caps{MaxStates: 100000, MaxWall: 10 * time.Minute}
	default:
		opts.DropNodes = DropRouteAndNeighbors
		opts.Caps[COB] = Caps{MaxStates: 500000, MaxWall: 10 * time.Minute}
	}
	return opts
}

// RunGridEvaluation runs the paper's grid scenario at the given dimension
// once per algorithm and returns one row each — the data behind Table I
// (dim 10) and Figure 10 (dims 5, 7, 10).
func RunGridEvaluation(dim int, opts EvalOptions) ([]EvalRow, error) {
	algos := opts.Algorithms
	if len(algos) == 0 {
		algos = Algorithms
	}
	if opts.SampleEvery == 0 {
		opts.SampleEvery = 64
	}
	rows := make([]EvalRow, 0, len(algos))
	for _, algo := range algos {
		scenario, err := GridCollectScenario(GridCollectOptions{
			Dim:          dim,
			Algorithm:    algo,
			Packets:      opts.Packets,
			DropNodes:    opts.DropNodes,
			MaxDropNodes: opts.MaxDropNodes,
			Caps:         opts.Caps[algo],
		})
		if err != nil {
			return nil, err
		}
		scenario = scenario.WithSampling(opts.SampleEvery)
		var report *Report
		if opts.CheckpointDir != "" {
			dir := filepath.Join(opts.CheckpointDir, fmt.Sprintf("grid%d-%s", dim, algo))
			report, err = Resume(scenario, dir)
		} else {
			report, err = RunScenario(scenario)
		}
		if err != nil {
			return nil, err
		}
		aborted, reason := report.Aborted()
		rows = append(rows, EvalRow{
			Algorithm:   algo,
			Nodes:       dim * dim,
			Runtime:     report.Wall(),
			States:      report.States(),
			MemBytes:    report.MemBytes(),
			PeakMem:     report.PeakMemBytes(),
			DScenarios:  report.DScenarios(),
			Instrs:      report.Instructions(),
			Aborted:     aborted,
			AbortReason: reason,
			Samples:     report.Samples(),
		})
	}
	return rows, nil
}

// FormatTable renders rows in the layout of the paper's Table I.
func FormatTable(title string, rows []EvalRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-28s %-16s %12s %14s %14s\n",
		"State mapping algorithm", "Runtime", "States", "RAM (modeled)", "DScenarios")
	names := map[Algorithm]string{
		COB: "Copy On Branch (COB)",
		COW: "Copy On Write (COW)",
		SDS: "Super DStates (SDS)",
	}
	for _, r := range rows {
		runtime := r.Runtime.Round(time.Millisecond).String()
		if r.Aborted {
			runtime += " (aborted)"
		}
		fmt.Fprintf(&sb, "%-28s %-16s %12d %14s %14s\n",
			names[r.Algorithm], runtime, r.States,
			metrics.FormatBytes(r.MemBytes), r.DScenarios.String())
	}
	return sb.String()
}

// FigureSeries renders the Figure 10 data for one grid dimension: two
// blocks (state growth, memory growth) as CSV over wall time, one series
// per algorithm, plus a crude log-scale terminal chart.
func FigureSeries(dim int, rows []EvalRow) string {
	var sb strings.Builder
	bySeries := map[string][]Sample{}
	for _, r := range rows {
		bySeries[r.Algorithm.String()] = r.Samples
	}
	fmt.Fprintf(&sb, "# Figure 10 (%d nodes): state growth over time\n", dim*dim)
	sb.WriteString(metrics.AsciiChart("states (log scale)", bySeries,
		func(s Sample) float64 { return float64(s.States) }, 60, 8))
	fmt.Fprintf(&sb, "\n# Figure 10 (%d nodes): memory growth over time\n", dim*dim)
	sb.WriteString(metrics.AsciiChart("modeled RAM (log scale)", bySeries,
		func(s Sample) float64 { return float64(s.MemBytes) }, 60, 8))
	sb.WriteString("\n# CSV series (downsampled)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "## %s, final: states=%d mem=%s", r.Algorithm, r.States,
			metrics.FormatBytes(r.MemBytes))
		if r.Aborted {
			fmt.Fprintf(&sb, " [%s aborted]", r.Algorithm)
		}
		sb.WriteByte('\n')
		sb.WriteString("wall_ms,states,mem_bytes\n")
		var series metrics.Series
		for _, s := range r.Samples {
			series.Add(s)
		}
		for _, s := range series.Downsample(40) {
			fmt.Fprintf(&sb, "%.1f,%d,%d\n",
				float64(s.Wall.Microseconds())/1000, s.States, s.MemBytes)
		}
	}
	return sb.String()
}
