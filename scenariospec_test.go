package sde_test

import (
	"encoding/json"
	"testing"

	"sde"
)

func TestParseAlgorithm(t *testing.T) {
	tests := []struct {
		in   string
		want sde.Algorithm
		ok   bool
	}{
		{"cob", sde.COB, true},
		{"COW", sde.COW, true},
		{"Sds", sde.SDS, true},
		{"klee", 0, false},
		{"", 0, false},
	}
	for _, tt := range tests {
		got, err := sde.ParseAlgorithm(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("ParseAlgorithm(%q) err = %v", tt.in, err)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("ParseAlgorithm(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseTopology(t *testing.T) {
	kind, size, err := sde.ParseTopology("grid:5")
	if err != nil || kind != "grid" || size != 5 {
		t.Errorf("ParseTopology(grid:5) = %q, %d, %v", kind, size, err)
	}
	for _, bad := range []string{"grid", "grid:", "grid:x", "grid:1", ":5"} {
		if _, _, err := sde.ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}
}

func TestParseFailurePlan(t *testing.T) {
	plan, err := sde.ParseFailurePlan("dup:0,reboot:3,drop:1,drop:2")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.DuplicateFirst[0] || !plan.RebootOnFirst[3] || !plan.DropFirst[1] || !plan.DropFirst[2] {
		t.Errorf("plan = %+v", plan)
	}
	if plan2, err := sde.ParseFailurePlan(""); err != nil || plan2.DropFirst != nil {
		t.Errorf("empty spec: %+v, %v", plan2, err)
	}
	for _, bad := range []string{"dup", "dup:x", "explode:1"} {
		if _, err := sde.ParseFailurePlan(bad); err == nil {
			t.Errorf("ParseFailurePlan(%q) accepted", bad)
		}
	}
}

func TestScenarioSpecCombos(t *testing.T) {
	good := []sde.ScenarioSpec{
		{Workload: "collect", Topology: "grid:4", Drops: "route"},
		{Workload: "collect", Topology: "grid:4", Drops: "route+neighbors"},
		{Workload: "collect", Topology: "grid:4", Drops: "none"},
		{Workload: "collect", Topology: "line:3", Drops: "route", Failures: "dup:0"},
		{Workload: "flood", Topology: "mesh:4"},
		{Workload: "runicast", Topology: "line:3", Packets: 1},
		{Workload: "threshold", Topology: "line:3"},
		{Workload: "discovery", Topology: "grid:3"},
		{Workload: "discovery", Topology: "line:3", Drops: "none"},
		{Workload: "discovery", Topology: "mesh:3"},
		{Topology: "grid:3"}, // defaults: collect, sds, route
	}
	for _, spec := range good {
		s, err := spec.Scenario()
		if err != nil {
			t.Errorf("spec %v: %v", spec, err)
			continue
		}
		if s.Description() == "" {
			t.Errorf("spec %v: empty description", spec)
		}
	}
	bad := []sde.ScenarioSpec{
		{Workload: "collect", Topology: "mesh:4"},                     // unsupported combo
		{Workload: "flood", Topology: "grid:4"},                       // unsupported combo
		{Workload: "collect", Topology: "grid:4", Drops: "banana"},    // bad drop selection
		{Workload: "collect", Topology: "grid:4", Failures: "dup:0"},  // grid rejects failures
		{Workload: "collect", Topology: "grid:4", Failures: "drop:0"}, // even drop failures
		{Workload: "discovery", Topology: "ring:4"},                   // unknown topology kind
		{Workload: "collect", Topology: "grid"},                       // malformed topology
		{Workload: "collect", Topology: "grid:3", Algorithm: "klee"},  // unknown algorithm
	}
	for _, spec := range bad {
		if _, err := spec.Scenario(); err == nil {
			t.Errorf("spec %v accepted", spec)
		}
	}
}

// TestScenarioSpecDeterministic is the property the exploration service
// leans on: the coordinator and a worker materialising the same spec in
// different processes must explore identical spaces. Two independent
// materialisations must therefore produce bit-identical reports.
func TestScenarioSpecDeterministic(t *testing.T) {
	spec := sde.ScenarioSpec{
		Workload: "collect", Topology: "grid:3", Packets: 2,
		Drops: "route+neighbors",
	}
	digests := make([]string, 2)
	for i := range digests {
		s, err := spec.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sde.RunScenarioSharded(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		digests[i], err = rep.Digest(8)
		if err != nil {
			t.Fatal(err)
		}
	}
	if digests[0] != digests[1] {
		t.Errorf("independent materialisations diverge: %s vs %s", digests[0], digests[1])
	}
}

func TestScenarioSpecJSONRoundTrip(t *testing.T) {
	spec := sde.ScenarioSpec{
		Workload: "collect", Topology: "grid:3", Algorithm: "cow",
		Packets: 2, Drops: "none", MaxStates: 100,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back sde.ScenarioSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Errorf("round trip: %+v != %+v", back, spec)
	}
	// Omitted optional fields unmarshal to working defaults.
	var min sde.ScenarioSpec
	if err := json.Unmarshal([]byte(`{"workload":"collect","topology":"grid:3"}`), &min); err != nil {
		t.Fatal(err)
	}
	if _, err := min.Scenario(); err != nil {
		t.Errorf("minimal spec does not materialise: %v", err)
	}
}
