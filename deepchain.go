package sde

import "fmt"

// The deep-chain workload: a relay line whose source pushes packets down
// the chain through symbolically-dropped first receptions, followed by a
// long, purely concrete per-node mixing phase. The drop decisions give
// the exploration real dscenario structure (2^(K-1) rows under COB), but
// none of them are declared shardable — the workload exists to exercise
// and benchmark depth-horizon partitioning, the only dimension that can
// spread a zero-shardable-bits run across a pool or fleet.

// DeepChainOptions parameterises DeepChainScenario.
type DeepChainOptions struct {
	// K is the line length (source + K-1 relays; K >= 2).
	K int
	// Algorithm is the state mapping algorithm.
	Algorithm Algorithm
	// Packets is how many packets the source emits (default 2; at least
	// 2 keeps every relay's first reception feasible in every drop
	// combination, so all 2^(K-1) dscenarios materialise).
	Packets uint32
	// Ticks is the length of the concrete mixing tail per node (default
	// 48): each node runs this many timer rounds of branch-free xorshift
	// arithmetic after the messaging phase.
	Ticks uint32
	// Iters is the inner arithmetic loop count per mixing tick (default
	// 256) — the knob that scales work per event without changing the
	// event structure.
	Iters uint32
}

const (
	dcAddrRemaining = 0x20
	dcAddrTicks     = 0x24
	dcAddrAcc       = 0x28
	dcAddrRecv      = 0x2C
	dcTxBuf         = 0x300
	dcMagic         = 0xDC
)

// DeepChainScenario builds the deep-chain workload. The returned
// scenario always has MaxShardBits() == 0.
func DeepChainScenario(opts DeepChainOptions) (Scenario, error) {
	if opts.K < 2 {
		return Scenario{}, fmt.Errorf("sde: deep chain needs K >= 2 (got %d)", opts.K)
	}
	if opts.Packets == 0 {
		opts.Packets = 2
	}
	if opts.Ticks == 0 {
		opts.Ticks = 48
	}
	if opts.Iters == 0 {
		opts.Iters = 256
	}
	k := opts.K
	// The messaging phase is over once the last packet (emitted at
	// 1 + 2*(Packets-1)) has crossed the whole chain; the mixing phase
	// starts after it, staggered per node so event times stay disjoint.
	mixStart := uint32(2*opts.Packets + uint32(k) + 2)
	period := uint32(k + 2)

	b := NewProgramBuilder()
	boot := b.Func("boot")
	boot.NodeID(R9)
	boot.BrNZ(R9, "relay")
	boot.MovI(R1, opts.Packets)
	boot.MovI(R2, 0)
	boot.Store(R2, dcAddrRemaining, R1)
	boot.MovI(R8, 1)
	boot.Timer("emit", R8, R0)
	boot.Label("relay")
	boot.MovI(R8, mixStart)
	boot.Add(R8, R8, R9)
	boot.Timer("mix", R8, R0)
	boot.Ret()

	emit := b.Func("emit")
	emit.MovI(R2, 0)
	emit.Load(R1, R2, dcAddrRemaining)
	emit.BrZ(R1, "done")
	emit.SubI(R1, R1, 1)
	emit.Store(R2, dcAddrRemaining, R1)
	emit.MovI(R6, dcTxBuf)
	emit.MovI(R7, dcMagic)
	emit.Store(R6, 0, R7)
	emit.Store(R6, 1, R1)
	emit.MovI(R5, 1)
	emit.Send(R5, R6, 2)
	emit.MovI(R8, 2)
	emit.Timer("emit", R8, R0)
	emit.Label("done")
	emit.Ret()

	// on_recv(src=r0, buf=r1, len=r2): count, forward down the chain.
	recv := b.Func("on_recv")
	recv.MovI(R3, 0)
	recv.Load(R4, R1, 0)
	recv.EqI(R5, R4, dcMagic)
	recv.BrZ(R5, "ignore")
	recv.Load(R6, R3, dcAddrRecv)
	recv.AddI(R6, R6, 1)
	recv.Store(R3, dcAddrRecv, R6)
	recv.NodeID(R9)
	recv.AddI(R9, R9, 1)
	recv.UltI(R5, R9, uint32(k))
	recv.BrZ(R5, "ignore")
	recv.Load(R7, R1, 1)
	recv.MovI(R6, dcTxBuf)
	recv.MovI(R8, dcMagic)
	recv.Store(R6, 0, R8)
	recv.Store(R6, 1, R7)
	recv.Send(R9, R6, 2)
	recv.Label("ignore")
	recv.Ret()

	// mix: the deep concrete tail — xorshift rounds on one accumulator
	// word, rescheduled Ticks times per node.
	mix := b.Func("mix")
	mix.MovI(R3, 0)
	mix.Load(R2, R3, dcAddrAcc)
	mix.NodeID(R4)
	mix.AddI(R2, R2, 0x9E37)
	mix.Add(R2, R2, R4)
	mix.MovI(R5, opts.Iters)
	mix.Label("loop")
	mix.ShlI(R6, R2, 13)
	mix.Xor(R2, R2, R6)
	mix.LShrI(R6, R2, 17)
	mix.Xor(R2, R2, R6)
	mix.ShlI(R6, R2, 5)
	mix.Xor(R2, R2, R6)
	mix.SubI(R5, R5, 1)
	mix.BrNZ(R5, "loop")
	mix.Store(R3, dcAddrAcc, R2)
	mix.Load(R6, R3, dcAddrTicks)
	mix.AddI(R6, R6, 1)
	mix.Store(R3, dcAddrTicks, R6)
	mix.UltI(R7, R6, opts.Ticks)
	mix.BrZ(R7, "stop")
	mix.MovI(R8, period)
	mix.Timer("mix", R8, R0)
	mix.Label("stop")
	mix.Ret()

	prog, err := b.Build()
	if err != nil {
		return Scenario{}, err
	}
	drops := make(map[int]bool, k-1)
	for n := 1; n < k; n++ {
		drops[n] = true
	}
	horizon := uint64(mixStart) + uint64(k) + uint64(opts.Ticks+2)*uint64(period)
	return CustomScenario(
		fmt.Sprintf("deep chain: %d-node line, %d packets, %d mixing ticks, drops on every relay (none shardable)",
			k, opts.Packets, opts.Ticks),
		CustomConfig{
			Topology:     Line(k),
			Program:      prog,
			Algorithm:    opts.Algorithm,
			HorizonTicks: horizon,
			Failures:     FailurePlan{DropFirst: drops},
			// ShardableNodes deliberately empty: depth-horizon
			// partitioning is the only way to spread this workload.
		})
}
