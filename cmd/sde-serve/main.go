// Command sde-serve is the exploration service's coordinator: a
// long-running process that owns the shard queues of submitted jobs,
// leases work to a fleet of sde-worker processes over TCP, recovers
// leases lost to worker crashes, and assembles each job's shard leaves
// into a report bit-identical to an in-process sharded run.
//
// Usage:
//
//	sde-serve -listen 127.0.0.1:7117 -http 127.0.0.1:8117 -workers 4
//
// -workers N spawns and supervises N local sde-worker processes
// (respawning any that die); remote workers connect to -listen on their
// own. Jobs are submitted over the HTTP API:
//
//	curl -d '{"spec":{"workload":"collect","topology":"grid:3","packets":2},
//	          "shard_bits":2,"test_cases":8}' http://127.0.0.1:8117/api/v1/jobs
//
// -oracle '<spec json>' computes the same job in-process and prints its
// digest — the string a distributed run's report must reproduce exactly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sde"
	"sde/internal/dist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7117", "worker protocol listen address")
	httpAddr := flag.String("http", "127.0.0.1:8117", "job API listen address")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "requeue a lease after this long without a heartbeat")
	workers := flag.Int("workers", 0, "spawn and supervise this many local sde-worker processes")
	workerBin := flag.String("worker-bin", "", "sde-worker binary for -workers (default: next to this binary, then $PATH)")
	workdir := flag.String("workdir", "", "base work directory for spawned workers (default: a temp dir)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "heartbeat interval passed to spawned workers")
	oracle := flag.String("oracle", "", "compute a spec's in-process digest and exit (JSON ScenarioSpec)")
	oracleBits := flag.Int("oracle-bits", 2, "shard bits for -oracle")
	oracleTestCases := flag.Int("oracle-testcases", 8, "test-case budget for -oracle")
	oracleHorizon := flag.Uint64("oracle-horizon", 0, "depth horizon for -oracle (must match the job's depth_horizon)")
	oracleFanout := flag.Int("oracle-fanout", 0, "horizon fan-out for -oracle (0 = default 2 when a horizon is set; must match the job's horizon_fanout)")
	quiet := flag.Bool("quiet", false, "suppress operational logging")
	flag.Parse()

	if *oracle != "" {
		digest, err := oracleDigest(*oracle, *oracleBits, *oracleTestCases, *oracleHorizon, *oracleFanout)
		if err != nil {
			return err
		}
		fmt.Println(digest)
		return nil
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", *workers)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sde-serve: %s\n", fmt.Sprintf(format, args...))
	}
	if *quiet {
		logf = func(string, ...any) {}
	}

	coord := dist.NewCoordinator(dist.Options{LeaseTTL: *leaseTTL, Logf: logf})
	defer coord.Close()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listening for workers: %w", err)
	}
	logf("worker protocol on %s", l.Addr())
	serveErr := make(chan error, 2)
	go func() { serveErr <- coord.Serve(l) }()

	httpSrv := &http.Server{Addr: *httpAddr, Handler: coord.HTTPHandler()}
	hl, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return fmt.Errorf("listening for the job API: %w", err)
	}
	logf("job API on http://%s", hl.Addr())
	go func() {
		if err := httpSrv.Serve(hl); !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()

	if *workers > 0 {
		if err := spawnFleet(ctx, *workers, *workerBin, *workdir, *heartbeat, l.Addr().String(), logf); err != nil {
			return err
		}
	}

	select {
	case <-ctx.Done():
		logf("shutting down")
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	return nil
}

// oracleDigest runs a spec in-process and returns the digest a
// distributed run of the same job must match. The (horizon, fanout)
// pair is part of the partition definition, so it must equal the job's —
// a digest from a different horizon legitimately differs.
func oracleDigest(specJSON string, bits, testCases int, horizon uint64, fanout int) (string, error) {
	var spec sde.ScenarioSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		return "", fmt.Errorf("parsing -oracle spec: %w", err)
	}
	scenario, err := spec.Scenario()
	if err != nil {
		return "", err
	}
	if bits > scenario.MaxShardBits() {
		bits = scenario.MaxShardBits()
	}
	if scenario.MaxShardBits() == 0 && horizon == 0 {
		fmt.Fprintln(os.Stderr, "sde-serve: note: 0 shardable bits and no -oracle-horizon — a multi-worker fleet would run this spec as a single lease; set depth_horizon on the job (and -oracle-horizon here) to fan it out")
	}
	report, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
		ShardBits:     bits,
		DepthHorizon:  horizon,
		HorizonFanout: fanout,
	})
	if err != nil {
		return "", err
	}
	return report.Digest(testCases)
}

// spawnFleet launches and supervises the local worker processes,
// respawning any that exit while the coordinator lives.
func spawnFleet(ctx context.Context, n int, bin, workdir string, heartbeat time.Duration,
	addr string, logf func(string, ...any)) error {
	if bin == "" {
		found, err := findWorkerBin()
		if err != nil {
			return err
		}
		bin = found
	}
	if workdir == "" {
		dir, err := os.MkdirTemp("", "sde-serve-workers-")
		if err != nil {
			return err
		}
		workdir = dir
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("local-%d", i)
		dir := filepath.Join(workdir, name)
		go superviseWorker(ctx, bin, addr, name, dir, heartbeat, logf)
	}
	return nil
}

// findWorkerBin locates sde-worker next to this binary, then on $PATH.
func findWorkerBin() (string, error) {
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "sde-worker")
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
	}
	if path, err := exec.LookPath("sde-worker"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("sde-worker binary not found (build it, or pass -worker-bin)")
}

// superviseWorker keeps one worker slot alive: run, log the exit,
// respawn after a short pause.
func superviseWorker(ctx context.Context, bin, addr, name, dir string,
	heartbeat time.Duration, logf func(string, ...any)) {
	for ctx.Err() == nil {
		cmd := exec.CommandContext(ctx, bin,
			"-connect", addr,
			"-name", name,
			"-workdir", dir,
			"-heartbeat", heartbeat.String(),
			"-retry", "500ms",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		logf("worker %s: starting %s", name, bin)
		err := cmd.Run()
		if ctx.Err() != nil {
			return
		}
		logf("worker %s exited (%v), respawning", name, err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(500 * time.Millisecond):
		}
	}
}
