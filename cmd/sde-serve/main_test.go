package main

import (
	"strings"
	"testing"

	"sde"
)

// TestOracleDigestMatchesInProcess: the -oracle output is the contract
// the end-to-end gauntlet compares a distributed run against, so it must
// equal the library's own sharded digest.
func TestOracleDigestMatchesInProcess(t *testing.T) {
	specJSON := `{"workload":"collect","topology":"grid:3","packets":2,"drops":"route+neighbors"}`
	got, err := oracleDigest(specJSON, 2, 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	spec := sde.ScenarioSpec{
		Workload: "collect", Topology: "grid:3", Packets: 2,
		Drops: "route+neighbors",
	}
	s, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sde.RunScenarioSharded(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.Digest(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("oracle digest %s != library digest %s", got, want)
	}
}

// TestOracleDigestClampsBits: asking for more bits than the scenario can
// shard must clamp, not fail — the service does the same on submission.
func TestOracleDigestClampsBits(t *testing.T) {
	specJSON := `{"workload":"collect","topology":"grid:3","packets":1}`
	if _, err := oracleDigest(specJSON, 64, 0, 0, 0); err != nil {
		t.Errorf("oracle with oversized bits failed: %v", err)
	}
}

func TestOracleDigestRejectsBadSpec(t *testing.T) {
	for _, bad := range []string{`{not json`, `{"workload":"collect","topology":"ring:9"}`} {
		if _, err := oracleDigest(bad, 2, 0, 0, 0); err == nil {
			t.Errorf("oracle accepted %q", bad)
		}
	}
	if _, err := oracleDigest(`{"workload":"collect","topology":"ring:9"}`, 2, 0, 0, 0); err == nil ||
		strings.Contains(err.Error(), "panic") {
		t.Error("bad topology must return a clean error")
	}
}
