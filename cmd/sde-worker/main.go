// Command sde-worker is one member of an exploration-service fleet: it
// connects to an sde-serve coordinator, leases shard work items, executes
// them with durable checkpoints, and streams each finished leaf's
// snapshot back.
//
// Usage:
//
//	sde-worker -connect 127.0.0.1:7117 -workdir /var/tmp/sde-w0
//
// The worker is stateless apart from its work directory: killing it
// mid-lease loses nothing (the coordinator requeues the lease, and a
// worker restarted with the same -workdir resumes from its own
// checkpoints). -retry makes it reconnect after coordinator restarts.
//
// -crash-after-checkpoints N is a chaos hook for recovery testing: the
// process exits abruptly (code 3, no protocol goodbye) once the active
// lease's checkpoint file has been observed N times.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sde/internal/dist"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, dist.ErrCrashed) {
			fmt.Fprintln(os.Stderr, "sde-worker:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "sde-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	connect := flag.String("connect", "", "coordinator address (host:port), required")
	name := flag.String("name", "", "worker name (default host-pid)")
	workdir := flag.String("workdir", "", "checkpoint work directory, required")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "heartbeat interval while executing a lease")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint interval in events (0 = engine default)")
	compile := flag.Bool("compile", true, "basic-block compiled fast path; -compile=false is the first soundness-triage step")
	merge := flag.Bool("merge", false, "ITE-based state merging; off by default, triage after -compile")
	reduce := flag.Bool("reduce", false, "symmetry + partial-order reduction; off by default, triage after -merge")
	speculate := flag.Bool("speculate", true, "speculative-fork solver pipeline")
	specWorkers := flag.Int("spec-workers", 0, "solver workers for the speculative pipeline (0 = one per CPU)")
	splitStates := flag.Int("split-states", 0, "self-split a lease above this many live states when the queue is starved (0 = never)")
	splitAfter := flag.Duration("split-after", 2*time.Second, "minimum lease runtime before self-splitting")
	crashAfter := flag.Int("crash-after-checkpoints", 0, "chaos hook: crash abruptly after observing the lease checkpoint N times")
	retry := flag.Duration("retry", 0, "reconnect after connection loss, waiting this long (0 = exit)")
	quiet := flag.Bool("quiet", false, "suppress per-lease logging")
	flag.Parse()

	if *connect == "" {
		return fmt.Errorf("-connect is required")
	}
	if *workdir == "" {
		return fmt.Errorf("-workdir is required")
	}
	if *specWorkers < 0 {
		return fmt.Errorf("-spec-workers must be >= 0 (got %d)", *specWorkers)
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if err := os.MkdirAll(*workdir, 0o755); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sde-worker[%s]: %s\n", *name, fmt.Sprintf(format, args...))
	}
	if *quiet {
		logf = nil
	}
	opts := dist.WorkerOptions{
		Name:                  *name,
		WorkDir:               *workdir,
		HeartbeatEvery:        *heartbeat,
		CheckpointEvery:       *checkpointEvery,
		DisableSpeculation:    !*speculate,
		SpecWorkers:           *specWorkers,
		DisableCompiledIR:     !*compile,
		EnableMerge:           *merge,
		EnableReduce:          *reduce,
		SplitStates:           *splitStates,
		SplitAfter:            *splitAfter,
		CrashAfterCheckpoints: *crashAfter,
		Logf:                  logf,
	}

	for {
		err := dist.RunWorker(ctx, *connect, opts)
		switch {
		case err == nil:
			return nil // clean shutdown on signal
		case errors.Is(err, dist.ErrCrashed):
			return err
		case *retry <= 0:
			return err
		}
		if logf != nil {
			logf("connection lost (%v), retrying in %v", err, *retry)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*retry):
		}
	}
}
