package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sde/internal/expr"
	"sde/internal/solver"
)

// solverBenchResult is one row of BENCH_solver.json: the prefix-extension
// workload replayed under one solver configuration.
type solverBenchResult struct {
	Name             string  `json:"name"`
	NsPerOp          int64   `json:"ns_per_op"`    // one full workload replay
	NsPerQuery       int64   `json:"ns_per_query"` // averaged over the query stream
	SATCalls         int64   `json:"sat_calls"`
	IncrementalSolve int64   `json:"incremental_solves"`
	Conflicts        int64   `json:"conflicts"`
	Decisions        int64   `json:"decisions"`
	Gates            int64   `json:"gates"`
	EncodeSkips      int64   `json:"encode_skips"`
	AssumeReuses     int64   `json:"assume_reuses"`
	CacheHits        int64   `json:"cache_hits"`
	SubsumptionHits  int64   `json:"subsumption_hits"`
	PoolHits         int64   `json:"pool_hits"`
	FastPath         int64   `json:"fast_path"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	SubsumptionRate  float64 `json:"subsumption_hit_rate"`
}

// solverBenchReport is the BENCH_solver.json document: the headline
// incremental-vs-from-scratch comparison (both with every other layer
// disabled) plus a one-layer-at-a-time ablation of the full pipeline.
type solverBenchReport struct {
	Benchmark string    `json:"benchmark"`
	Generated time.Time `json:"generated"`
	Depth     int       `json:"depth"`
	Queries   int       `json:"queries"`
	Reps      int       `json:"reps"`

	Modes    []solverBenchResult `json:"modes"`
	Ablation []solverBenchResult `json:"ablation"`

	SpeedupIncrementalVsScratch float64 `json:"speedup_incremental_vs_scratch"`
}

// runSolverBench measures the solver pipeline on the shared
// prefix-extension workload and writes the results as JSON — the
// machine-readable artifact CI uploads and the README ablation table
// quotes.
func runSolverBench(out string, depth, reps int) error {
	if depth < 1 {
		return fmt.Errorf("-depth must be at least 1 (got %d)", depth)
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be at least 1 (got %d)", reps)
	}
	queries := solver.PrefixExtensionQueries(expr.NewBuilder(), depth)
	rep := solverBenchReport{
		Benchmark: "PrefixExtension",
		Generated: time.Now().UTC(),
		Depth:     depth,
		Queries:   len(queries),
		Reps:      reps,
	}

	measure := func(name string, opts solver.Options) solverBenchResult {
		var best time.Duration
		var stats solver.Stats
		for r := 0; r < reps; r++ {
			// Fresh builder per rep: expression hash-consing must not
			// carry over, or rep 2 would replay rep 1's blast memo.
			qs := solver.PrefixExtensionQueries(expr.NewBuilder(), depth)
			s := solver.NewWithOptions(opts)
			sess := s.NewSession()
			start := time.Now()
			for j, q := range qs {
				if _, err := s.FeasibleWith(sess, q.Prefix, q.Extra); err != nil {
					fmt.Fprintf(os.Stderr, "sde-bench: %s query %d: %v\n", name, j, err)
					os.Exit(1)
				}
			}
			elapsed := time.Since(start)
			if r == 0 || elapsed < best {
				best = elapsed
				stats = s.Stats()
			}
		}
		res := solverBenchResult{
			Name:             name,
			NsPerOp:          best.Nanoseconds(),
			NsPerQuery:       best.Nanoseconds() / int64(len(queries)),
			SATCalls:         stats.SATCalls,
			IncrementalSolve: stats.IncSolves,
			Conflicts:        stats.Conflicts,
			Decisions:        stats.Decisions,
			Gates:            stats.Gates,
			EncodeSkips:      stats.EncodeSkips,
			AssumeReuses:     stats.AssumeReuses,
			CacheHits:        stats.CacheHits,
			SubsumptionHits:  stats.SubsumptionHits,
			PoolHits:         stats.PoolHits,
			FastPath:         stats.FastPath,
		}
		if stats.Queries > 0 {
			res.CacheHitRate = float64(stats.CacheHits) / float64(stats.Queries)
			res.SubsumptionRate = float64(stats.SubsumptionHits) / float64(stats.Queries)
		}
		return res
	}

	// Headline comparison: everything but the layer under test disabled.
	isolated := solver.Options{
		DisableCache:       true,
		DisablePool:        true,
		DisableFastPath:    true,
		DisablePartition:   true,
		DisableSubsumption: true,
	}
	scratch := isolated
	scratch.DisableIncremental = true
	inc := measure("incremental", isolated)
	fs := measure("fromscratch", scratch)
	rep.Modes = []solverBenchResult{inc, fs}
	if inc.NsPerOp > 0 {
		rep.SpeedupIncrementalVsScratch = float64(fs.NsPerOp) / float64(inc.NsPerOp)
	}

	// Ablation: the full pipeline with one layer removed at a time.
	for _, abl := range []struct {
		name string
		opts solver.Options
	}{
		{"full", solver.Options{}},
		{"no-incremental", solver.Options{DisableIncremental: true}},
		{"no-subsumption", solver.Options{DisableSubsumption: true}},
		{"no-cache", solver.Options{DisableCache: true}},
		{"no-pool", solver.Options{DisablePool: true}},
		{"no-fastpath", solver.Options{DisableFastPath: true}},
		{"no-partition", solver.Options{DisablePartition: true}},
	} {
		rep.Ablation = append(rep.Ablation, measure(abl.name, abl.opts))
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("Prefix-extension solver bench (depth %d, %d queries, best of %d):\n",
		depth, len(queries), reps)
	fmt.Printf("  incremental:  %12s  conflicts=%-6d gates=%d\n",
		time.Duration(inc.NsPerOp), inc.Conflicts, inc.Gates)
	fmt.Printf("  from scratch: %12s  conflicts=%-6d gates=%d\n",
		time.Duration(fs.NsPerOp), fs.Conflicts, fs.Gates)
	fmt.Printf("  speedup: %.2fx  → %s\n", rep.SpeedupIncrementalVsScratch, out)
	return nil
}
