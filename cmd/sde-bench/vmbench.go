package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sde"
	"sde/internal/prof"
)

// vmBenchResult is one mode (compiled fast path on or off) of one
// workload in BENCH_vm.json.
type vmBenchResult struct {
	Name    string `json:"name"`
	Compile bool   `json:"compile"`
	NsPerOp int64  `json:"ns_per_op"` // one full scenario run (best of reps)

	Instructions uint64 `json:"instructions"`
	FastBlocks   uint64 `json:"fast_blocks"`
	SlowBlocks   uint64 `json:"slow_blocks"`
	FoldedInstrs uint64 `json:"folded_instrs"`
}

// vmBenchWorkload is one workload's compiled-vs-interpreted comparison.
type vmBenchWorkload struct {
	Name    string          `json:"name"`
	Desc    string          `json:"desc"`
	Modes   []vmBenchResult `json:"modes"`
	Speedup float64         `json:"speedup"` // interpreted wall / compiled wall
}

// vmBenchReport is the BENCH_vm.json document: the compiled basic-block
// fast path versus pure interpretation on concrete-heavy workloads —
// runs whose drop decisions (and all other inputs) are fixed concrete,
// so virtually every executed block is straight-line concrete code, the
// hot-loop case the load-time compiler targets.
type vmBenchReport struct {
	Benchmark string    `json:"benchmark"`
	Generated time.Time `json:"generated"`
	Reps      int       `json:"reps"`

	Workloads []vmBenchWorkload `json:"workloads"`

	// Speedup is the hotloop workload's interpreted wall time over its
	// compiled wall time — the headline the issue's acceptance
	// criterion tracks (>= 2x).
	Speedup float64 `json:"speedup"`
}

// vmHotLoopScenario builds the headline workload: four nodes each
// running a xorshift-style mixing loop on every timer tick — pure
// concrete straight-line arithmetic, the per-instruction interpreter's
// worst case (every ALU result becomes a hash-consed expression) and
// the fast path's best (one raw uint64 loop, expressions only at block
// exit).
func vmHotLoopScenario(nodes, ticks, iters int) (sde.Scenario, error) {
	b := sde.NewProgramBuilder()
	boot := b.Func("boot")
	boot.MovI(sde.R1, 1)
	boot.Timer("tick", sde.R1, sde.R0)
	boot.Ret()

	tick := b.Func("tick")
	tick.NodeID(sde.R2)
	tick.AddI(sde.R2, sde.R2, 0x9e37)
	tick.MovI(sde.R3, uint32(iters))
	tick.Label("loop")
	tick.ShlI(sde.R4, sde.R2, 13)
	tick.Xor(sde.R2, sde.R2, sde.R4)
	tick.LShrI(sde.R4, sde.R2, 17)
	tick.Xor(sde.R2, sde.R2, sde.R4)
	tick.ShlI(sde.R4, sde.R2, 5)
	tick.Xor(sde.R2, sde.R2, sde.R4)
	tick.SubI(sde.R3, sde.R3, 1)
	tick.BrNZ(sde.R3, "loop")
	tick.MovI(sde.R5, 0)
	tick.Store(sde.R5, 0x40, sde.R2)
	tick.Load(sde.R6, sde.R5, 0x44)
	tick.AddI(sde.R6, sde.R6, 1)
	tick.Store(sde.R5, 0x44, sde.R6)
	tick.UltI(sde.R7, sde.R6, uint32(ticks))
	tick.BrZ(sde.R7, "stop")
	tick.MovI(sde.R1, 1)
	tick.Timer("tick", sde.R1, sde.R0)
	tick.Label("stop")
	tick.Ret()

	prog, err := b.Build()
	if err != nil {
		return sde.Scenario{}, err
	}
	return sde.CustomScenario("vm hot loop", sde.CustomConfig{
		Topology:     sde.Line(nodes),
		Program:      prog,
		Algorithm:    sde.SDS,
		HorizonTicks: uint64(ticks) + 10,
	})
}

// runVMBench measures the compiled-IR fast path against the
// per-instruction interpreter on two all-concrete workloads — the
// compute-bound hot loop (headline) and the paper's grid-collect run
// with drops fixed concrete — and writes the results as JSON. When
// profileDir is non-empty it also captures one sequential CPU profile
// per hotloop mode (vm_interp.pprof / vm_compiled.pprof) — the
// before/after pair CI uploads next to the numbers.
func runVMBench(out, profileDir string, reps int) error {
	if reps < 1 {
		return fmt.Errorf("-reps must be at least 1 (got %d)", reps)
	}
	rep := vmBenchReport{
		Benchmark: "CompiledFastPath",
		Generated: time.Now().UTC(),
		Reps:      reps,
	}
	if profileDir != "" {
		if err := os.MkdirAll(profileDir, 0o755); err != nil {
			return err
		}
	}

	measure := func(name string, build func() (sde.Scenario, error), compile bool, profile string) (vmBenchResult, error) {
		var best time.Duration
		var res vmBenchResult
		for r := 0; r < reps; r++ {
			scenario, err := build()
			if err != nil {
				return vmBenchResult{}, err
			}
			if !compile {
				scenario = scenario.WithoutCompiledIR()
			}
			start := time.Now()
			report, err := sde.RunScenario(scenario)
			if err != nil {
				return vmBenchResult{}, fmt.Errorf("%s: %w", name, err)
			}
			elapsed := time.Since(start)
			if r == 0 || elapsed < best {
				best = elapsed
				vs := report.VMStats()
				res = vmBenchResult{
					Name:         name,
					Compile:      compile,
					NsPerOp:      best.Nanoseconds(),
					Instructions: report.Instructions(),
					FastBlocks:   vs.FastBlocks,
					SlowBlocks:   vs.SlowBlocks,
					FoldedInstrs: vs.FoldedInstrs,
				}
			}
		}
		if profile != "" {
			// One extra profiled rep, run sequentially so the two
			// profiles never overlap (pprof allows one CPU profile at a
			// time per process).
			scenario, err := build()
			if err != nil {
				return vmBenchResult{}, err
			}
			if !compile {
				scenario = scenario.WithoutCompiledIR()
			}
			stopProf, err := prof.Start(profile, "")
			if err != nil {
				return vmBenchResult{}, err
			}
			_, runErr := sde.RunScenario(scenario)
			if err := stopProf(); err != nil {
				return vmBenchResult{}, err
			}
			if runErr != nil {
				return vmBenchResult{}, fmt.Errorf("%s (profiled): %w", name, runErr)
			}
		}
		return res, nil
	}

	workloads := []struct {
		name, desc string
		build      func() (sde.Scenario, error)
		profiled   bool
	}{
		{
			name:     "hotloop",
			desc:     "4-node line, 50 ticks x 2000-iteration concrete mixing loop per node",
			profiled: true,
			build: func() (sde.Scenario, error) {
				return vmHotLoopScenario(4, 50, 2000)
			},
		},
		{
			name: "collect",
			desc: "7x7 grid collect, 10 packets, drops fixed concrete",
			build: func() (sde.Scenario, error) {
				return sde.GridCollectScenario(sde.GridCollectOptions{
					Dim:       7,
					Algorithm: sde.SDS,
					Packets:   10,
					DropNodes: sde.DropNone,
				})
			},
		},
	}

	for _, w := range workloads {
		wl := vmBenchWorkload{Name: w.name, Desc: w.desc}
		var interpNs, compiledNs int64
		for _, mode := range []struct {
			name    string
			compile bool
		}{
			{"interp", false},
			{"compiled", true},
		} {
			profile := ""
			if w.profiled && profileDir != "" {
				profile = filepath.Join(profileDir, "vm_"+mode.name+".pprof")
			}
			res, err := measure(w.name+"/"+mode.name, w.build, mode.compile, profile)
			if err != nil {
				return err
			}
			wl.Modes = append(wl.Modes, res)
			if mode.compile {
				compiledNs = res.NsPerOp
			} else {
				interpNs = res.NsPerOp
			}
		}
		if compiledNs > 0 {
			wl.Speedup = float64(interpNs) / float64(compiledNs)
		}
		if w.profiled {
			rep.Speedup = wl.Speedup
		}
		rep.Workloads = append(rep.Workloads, wl)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("Compiled fast-path bench (best of %d):\n", reps)
	for _, wl := range rep.Workloads {
		fmt.Printf("  %s (%s):\n", wl.Name, wl.Desc)
		for _, m := range wl.Modes {
			fmt.Printf("    %-9s %12s  instrs=%-9d fast=%-8d slow=%-6d folded=%d\n",
				m.Name, time.Duration(m.NsPerOp), m.Instructions,
				m.FastBlocks, m.SlowBlocks, m.FoldedInstrs)
		}
		fmt.Printf("    speedup: %.2fx\n", wl.Speedup)
	}
	fmt.Printf("  headline (hotloop) speedup: %.2fx  → %s\n", rep.Speedup, out)
	return nil
}
