package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sde"
	"sde/internal/expr"
	"sde/internal/vm"
)

// reduceBenchResult is one mode (reduction on or off) of one workload in
// BENCH_reduce.json.
type reduceBenchResult struct {
	Name    string `json:"name"`
	Reduce  bool   `json:"reduce"`
	NsPerOp int64  `json:"ns_per_op"` // one full scenario run (best of reps)

	Instructions uint64 `json:"instructions"`
	States       int    `json:"states"`
	Violations   int    `json:"violations"`

	GroupOrder  int    `json:"group_order,omitempty"`
	Decisions   int    `json:"decisions,omitempty"`
	Checks      uint64 `json:"reduce_checks,omitempty"`
	Pins        uint64 `json:"reduce_pins,omitempty"`
	Synthesized int    `json:"synthesized,omitempty"`
}

// reduceBenchWorkload is one workload's reduce-on-vs-off comparison.
type reduceBenchWorkload struct {
	Name  string              `json:"name"`
	Desc  string              `json:"desc"`
	Modes []reduceBenchResult `json:"modes"`
	// StateReduction is unreduced final states over reduced final states:
	// how many orbit-duplicate states the symmetry layer pruned away.
	StateReduction float64 `json:"state_reduction"`
	// TimeOverhead is reduced wall time over unreduced wall time — the
	// cost of canonicalization bookkeeping when the group prunes nothing
	// (the honesty workload) or the net win when it prunes a lot.
	TimeOverhead float64 `json:"time_overhead"`
}

// reduceBenchReport is the BENCH_reduce.json document: symmetry +
// partial-order reduction versus plain exploration. Reduction preserves
// the violation set (pinned by the on/off differential oracles) but not
// state counts — shrinking the explored state count on symmetric
// workloads is the whole point. The bench measures that shrinkage on a
// fully symmetric workload and the bookkeeping overhead on an asymmetric
// one where the stabilized group is trivial and nothing can be pruned.
type reduceBenchReport struct {
	Benchmark string    `json:"benchmark"`
	Generated time.Time `json:"generated"`
	Reps      int       `json:"reps"`

	Workloads []reduceBenchWorkload `json:"workloads"`

	// StateReduction is the symmetric workload's headline ratio — the
	// acceptance criterion tracks that it is at least 4x.
	StateReduction float64 `json:"state_reduction"`
	// HonestyOverhead is the asymmetric workload's wall-time ratio — the
	// acceptance criterion tracks that it stays within 10% of baseline.
	HonestyOverhead float64 `json:"honesty_overhead"`
}

// reduceFloodScenario builds the headline workload: a two-wave flood on
// a dim x dim grid. The center broadcasts at t=1, its edge-adjacent ring
// rebroadcasts on an unconditional timer at t=2, and every node counts
// receptions; symbolic first-reception drops are armed on three D4
// orbits ringing the center (the edge-adjacent ring, the diagonal ring,
// and the distance-2 straight ring). The per-node broadcast delays come
// from NodeInit and are constant on each ring, so the dynamics stay
// invariant under the grid's dihedral group D4 — declared via
// ring-constant labels. The wave schedule makes the inner ring decide
// its drops strictly before the outer rings, which keeps the online
// canonicalization close to the 618-orbit floor of the 4096 drop
// assignments (ordering the decisions outside-in would not). Under COB
// every drop decision multiplies the global dscenario count;
// canonicalization collapses each orbit to one representative.
func reduceFloodScenario(dim int) (sde.Scenario, error) {
	const (
		txBuf     = 0x100
		addrSeen  = 0x40
		addrDelay = 0x44
	)
	b := sde.NewProgramBuilder()

	boot := b.Func("boot")
	boot.MovI(sde.R3, 0)
	boot.Load(sde.R1, sde.R3, addrDelay)
	boot.BrZ(sde.R1, "silent") // delay 0: this node never broadcasts
	boot.Timer("bcast", sde.R1, sde.R0)
	boot.Label("silent")
	boot.Ret()

	bcast := b.Func("bcast")
	bcast.MovI(sde.R4, txBuf)
	bcast.MovI(sde.R5, 0xF100)
	bcast.Store(sde.R4, 0, sde.R5)
	bcast.MovI(sde.R6, sde.BroadcastAddr)
	bcast.Send(sde.R6, sde.R4, 1)
	bcast.Ret()

	recv := b.Func("on_recv")
	recv.MovI(sde.R3, 0)
	recv.Load(sde.R4, sde.R3, addrSeen)
	recv.AddI(sde.R4, sde.R4, 1)
	recv.Store(sde.R3, addrSeen, sde.R4)
	recv.Ret()

	prog, err := b.Build()
	if err != nil {
		return sde.Scenario{}, err
	}

	// Three rings around the center: its edge neighbours (first
	// reception at t=2 from the center), plus its diagonal neighbours
	// and the straight-line distance-2 ring (first reception at t=3 from
	// the inner ring's unconditional timer broadcast).
	c := dim / 2
	inner := []int{(c-1)*dim + c, (c+1)*dim + c, c*dim + (c - 1), c*dim + (c + 1)}
	outer := []int{
		(c-1)*dim + (c - 1), (c-1)*dim + (c + 1),
		(c+1)*dim + (c - 1), (c+1)*dim + (c + 1),
		(c-2)*dim + c, (c+2)*dim + c, c*dim + (c - 2), c*dim + (c + 2),
	}
	armed := append(append([]int{}, inner...), outer...)

	center := c*dim + c
	delays := make([]uint32, dim*dim)
	labels := make([]uint64, dim*dim)
	delays[center], labels[center] = 1, 1
	for _, n := range inner {
		delays[n], labels[n] = 2, 2
	}
	init := func(node int, s *vm.State, eb *expr.Builder) {
		if delays[node] != 0 {
			s.StoreWord(addrDelay, eb.Const(uint64(delays[node]), vm.WordBits))
		}
	}
	return sde.CustomScenario(fmt.Sprintf("%dx%d two-wave flood", dim, dim), sde.CustomConfig{
		Topology:     sde.Grid(dim, dim),
		Program:      prog,
		Algorithm:    sde.COB,
		HorizonTicks: 16,
		Failures:     sde.FailurePlan{DropFirst: sde.NodeSet(armed)},
		NodeInit:     init,
		Symmetry:     &sde.SymmetrySpec{Labels: labels},
	})
}

// runReduceBench measures symmetry reduction against plain exploration on
// the two-wave flood workload (headline: the armed drop sites form three
// full D4 orbits, so most drop assignments are orbit duplicates) and the
// paper's grid collect (honesty case: source and sink labels plus the
// static route stabilize the group down to the identity, so reduction
// can prune nothing and its bookkeeping cost is fully visible), and
// writes the results as JSON.
func runReduceBench(out string, reps int) error {
	if reps < 1 {
		return fmt.Errorf("-reps must be at least 1 (got %d)", reps)
	}
	rep := reduceBenchReport{
		Benchmark: "SymmetryReduction",
		Generated: time.Now().UTC(),
		Reps:      reps,
	}

	measure := func(name string, build func() (sde.Scenario, error), reduce bool) (reduceBenchResult, error) {
		var best time.Duration
		var res reduceBenchResult
		for r := 0; r < reps; r++ {
			scenario, err := build()
			if err != nil {
				return reduceBenchResult{}, err
			}
			if reduce {
				scenario = scenario.WithReduction()
			}
			// Settle the heap before timing: the preceding workload's
			// garbage (the unreduced flood peaks above 100k states)
			// otherwise taxes whichever mode happens to run first.
			runtime.GC()
			start := time.Now()
			report, err := sde.RunScenario(scenario)
			if err != nil {
				return reduceBenchResult{}, fmt.Errorf("%s: %w", name, err)
			}
			elapsed := time.Since(start)
			if r == 0 || elapsed < best {
				best = elapsed
				rs := report.ReduceStats()
				res = reduceBenchResult{
					Name:         name,
					Reduce:       reduce,
					NsPerOp:      best.Nanoseconds(),
					Instructions: report.Instructions(),
					States:       report.States(),
					Violations:   len(report.Violations()),
					GroupOrder:   rs.GroupOrder,
					Decisions:    rs.Decisions,
					Checks:       rs.Checks,
					Pins:         rs.Pins,
					Synthesized:  rs.Synthesized,
				}
			}
		}
		return res, nil
	}

	workloads := []struct {
		name, desc string
		headline   bool
		honesty    bool
		build      func() (sde.Scenario, error)
	}{
		{
			name:     "two-wave-flood",
			desc:     "5x5 grid COB two-wave flood, symbolic drops on three D4 rings around the center",
			headline: true,
			build: func() (sde.Scenario, error) {
				return reduceFloodScenario(5)
			},
		},
		{
			name:    "collect",
			desc:    "5x5 grid collect, 3 packets, symbolic route drops (asymmetric: trivial stabilized group)",
			honesty: true,
			build: func() (sde.Scenario, error) {
				return sde.GridCollectScenario(sde.GridCollectOptions{
					Dim:       5,
					Algorithm: sde.COB,
					Packets:   3,
					DropNodes: sde.DropRoute,
				})
			},
		},
	}

	for _, w := range workloads {
		wl := reduceBenchWorkload{Name: w.name, Desc: w.desc}
		var off, on reduceBenchResult
		for _, mode := range []bool{false, true} {
			res, err := measure(fmt.Sprintf("%s/reduce=%v", w.name, mode), w.build, mode)
			if err != nil {
				return err
			}
			wl.Modes = append(wl.Modes, res)
			if mode {
				on = res
			} else {
				off = res
			}
		}
		// Reduction must never change how many violations a run reports
		// (pruned orbits are recovered by witness expansion).
		if on.Violations != off.Violations {
			return fmt.Errorf("%s: reduction changed the violation count (%d vs %d) — soundness bug",
				w.name, on.Violations, off.Violations)
		}
		if on.States > 0 {
			wl.StateReduction = float64(off.States) / float64(on.States)
		}
		if off.NsPerOp > 0 {
			wl.TimeOverhead = float64(on.NsPerOp) / float64(off.NsPerOp)
		}
		if w.headline {
			rep.StateReduction = wl.StateReduction
		}
		if w.honesty {
			if on.States != off.States {
				return fmt.Errorf("%s: trivial-group reduction changed the state count (%d vs %d) — soundness bug",
					w.name, on.States, off.States)
			}
			rep.HonestyOverhead = wl.TimeOverhead
		}
		rep.Workloads = append(rep.Workloads, wl)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("Symmetry-reduction bench (best of %d):\n", reps)
	for _, wl := range rep.Workloads {
		fmt.Printf("  %s (%s):\n", wl.Name, wl.Desc)
		for _, m := range wl.Modes {
			fmt.Printf("    reduce=%-5v %12s  states=%-6d violations=%-3d group=%-4d checks=%-5d pins=%-5d synthesized=%d\n",
				m.Reduce, time.Duration(m.NsPerOp), m.States, m.Violations,
				m.GroupOrder, m.Checks, m.Pins, m.Synthesized)
		}
		fmt.Printf("    state reduction: %.2fx  time overhead: %.2fx\n",
			wl.StateReduction, wl.TimeOverhead)
	}
	fmt.Printf("  headline (two-wave-flood) state reduction: %.2fx  honesty overhead: %.2fx  → %s\n",
		rep.StateReduction, rep.HonestyOverhead, out)
	return nil
}
