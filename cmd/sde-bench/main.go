// Command sde-bench regenerates the paper's evaluation artifacts: Table I
// (runtime / states / RAM per state mapping algorithm) and the Figure 10
// state- and memory-growth series for the 25-, 49-, and 100-node grid
// scenarios.
//
// Usage:
//
//	sde-bench                 # full sweep at calibrated laptop scale
//	sde-bench -dims 5,7       # selected grid dimensions
//	sde-bench -packets 10     # paper-scale traffic (slow on one core)
//	sde-bench -table1         # only the 100-node Table I
//
// The -sharded mode compares the parallel schedulers on one grid
// scenario instead: an unsharded run, a static uniform 2^bits pre-split,
// and the adaptive work-stealing scheduler, all at the same worker
// count, with per-run scheduling telemetry (steals, splits, shared
// solver-cache hit rate, worker utilization):
//
//	sde-bench -sharded                        # defaults: 5x5 grid, GOMAXPROCS workers
//	sde-bench -sharded -workers 8 -shard-bits 3
//	sde-bench -sharded -split-bits 4 -split-threshold 2048 -shared-cache=false
//
// The -json mode benchmarks the constraint-solver pipeline on the
// prefix-extension workload (incremental vs from-scratch solving, plus a
// one-layer-at-a-time ablation) and writes machine-readable results:
//
//	sde-bench -json                           # writes BENCH_solver.json
//	sde-bench -json -out results.json -depth 32 -reps 5
//
// -json also benchmarks the query-optimization pipeline (-qopt-out,
// default BENCH_qopt.json), the speculative-fork solver pipeline
// (-spec-out, default BENCH_spec.json; synchronous vs 1/2/4 async
// solver workers on the entangled assume-chain workload), and the
// compiled basic-block fast path (-vm-out, default BENCH_vm.json;
// compiled vs interpreted on a concrete-heavy collect run, with
// optional per-mode CPU profiles via -vm-profile-dir). -spec-workers
// sizes the speculation pool for the table sweeps, and
// -cpuprofile/-memprofile write pprof profiles for any mode.
//
// Long sweeps can be made durable with -checkpoint DIR: every run (and,
// in -sharded mode, every shard of the adaptive schedule) snapshots its
// frontier into its own subdirectory, and re-invoking the same command
// resumes each one from its last snapshot instead of starting over.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"sde"
	"sde/internal/prof"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-bench:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	dimsFlag := flag.String("dims", "5,7,10", "comma-separated grid dimensions to evaluate")
	packets := flag.Uint("packets", 0, "packets per run (0 = calibrated default of 3; the paper uses 10)")
	table1 := flag.Bool("table1", false, "run only the 100-node Table I scenario")
	worstCase := flag.Bool("worstcase", false, "run only the §III-E worst-case complexity table")
	wallCap := flag.Duration("wall", 10*time.Minute, "wall-clock cap per run")
	sharded := flag.Bool("sharded", false, "compare the parallel shard schedulers on one grid scenario")
	workers := flag.Int("workers", 0, "worker pool size for -sharded (0 = GOMAXPROCS)")
	shardBits := flag.Int("shard-bits", 2, "static pre-split depth for -sharded (2^bits shards)")
	splitBits := flag.Int("split-bits", 0, "adaptive split depth cap for -sharded (0 = same as -shard-bits)")
	splitThreshold := flag.Int("split-threshold", 0, "live-state straggler threshold for -sharded (0 = default)")
	sharedCache := flag.Bool("shared-cache", true, "share one solver cache across shards in -sharded")
	specWorkers := flag.Int("spec-workers", 0, "solver workers for the speculative-fork pipeline (0 = one per CPU)")
	jsonBench := flag.Bool("json", false, "run the solver, query-optimizer, and speculation benches and write machine-readable results")
	jsonOut := flag.String("out", "BENCH_solver.json", "output path for -json")
	qoptOut := flag.String("qopt-out", "BENCH_qopt.json", "output path for the -json query-optimizer results")
	specOut := flag.String("spec-out", "BENCH_spec.json", "output path for the -json speculative-pipeline results")
	vmOut := flag.String("vm-out", "BENCH_vm.json", "output path for the -json compiled-fast-path results")
	mergeOut := flag.String("merge-out", "BENCH_merge.json", "output path for the -json state-merging results")
	reduceOut := flag.String("reduce-out", "BENCH_reduce.json", "output path for the -json symmetry-reduction results")
	depthOut := flag.String("depth-out", "BENCH_depth.json", "output path for the -json depth-partitioning results")
	vmProfileDir := flag.String("vm-profile-dir", "", "also write per-mode CPU profiles of the compiled-fast-path bench into this directory")
	jsonDepth := flag.Int("depth", 24, "path-condition depth for -json")
	jsonReps := flag.Int("reps", 3, "repetitions per configuration for -json (best is kept)")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory: make runs durable and resume interrupted ones")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Batch tool: trade GC frequency for throughput on large state sets.
	debug.SetGCPercent(600)

	if err := validateWorkerFlag("-workers", *workers); err != nil {
		return err
	}
	if err := validateWorkerFlag("-spec-workers", *specWorkers); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	if *jsonBench {
		if err := runSolverBench(*jsonOut, *jsonDepth, *jsonReps); err != nil {
			return err
		}
		if err := runQoptBench(*qoptOut, *jsonReps); err != nil {
			return err
		}
		if err := runSpecBench(*specOut, *jsonReps); err != nil {
			return err
		}
		if err := runVMBench(*vmOut, *vmProfileDir, *jsonReps); err != nil {
			return err
		}
		if err := runMergeBench(*mergeOut, *jsonReps); err != nil {
			return err
		}
		if err := runReduceBench(*reduceOut, *jsonReps); err != nil {
			return err
		}
		return runDepthBench(*depthOut, *jsonReps)
	}
	if *worstCase {
		return runWorstCase()
	}

	dims, err := parseDims(*dimsFlag)
	if err != nil {
		return err
	}
	if *sharded {
		return runSharded(dims[0], uint32(*packets), *workers, *specWorkers, *shardBits,
			*splitBits, *splitThreshold, *sharedCache, *wallCap, *checkpoint)
	}
	if *table1 {
		dims = []int{10}
	}

	for _, dim := range dims {
		opts := sde.DefaultEvalOptions(dim)
		if *packets > 0 {
			opts.Packets = uint32(*packets)
		}
		opts.CheckpointDir = *checkpoint
		for algo, caps := range opts.Caps {
			caps.MaxWall = *wallCap
			opts.Caps[algo] = caps
		}
		fmt.Printf("Running %dx%d grid scenario (%d nodes, %d packets)...\n",
			dim, dim, dim*dim, opts.Packets)
		start := time.Now()
		rows, err := sde.RunGridEvaluation(dim, opts)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Table I — %d node scenario with symbolic packet drops", dim*dim)
		if dim != 10 {
			title = fmt.Sprintf("Evaluation — %d node scenario with symbolic packet drops", dim*dim)
		}
		fmt.Println(sde.FormatTable(title, rows))
		if !*table1 {
			fmt.Println(sde.FigureSeries(dim, rows))
		}
		fmt.Printf("(sweep took %v)\n\n", time.Since(start).Round(time.Second))
	}
	return nil
}

// runSharded compares an unsharded run, a static uniform pre-split, and
// the adaptive work-stealing scheduler on the same grid scenario at the
// same worker count.
func runSharded(dim int, packets uint32, workers, specWorkers, shardBits, splitBits, splitThreshold int, sharedCache bool, wallCap time.Duration, checkpoint string) error {
	opts := sde.DefaultEvalOptions(dim)
	if packets > 0 {
		opts.Packets = packets
	}
	scenario, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:       dim,
		Algorithm: sde.SDS,
		Packets:   opts.Packets,
		DropNodes: opts.DropNodes,
	})
	if err != nil {
		return err
	}
	scenario = scenario.WithCaps(sde.Caps{MaxWall: wallCap})
	if shardBits > scenario.MaxShardBits() {
		shardBits = scenario.MaxShardBits()
		fmt.Printf("(clamping -shard-bits to the scenario's %d shardable nodes)\n", shardBits)
	}
	if splitBits <= 0 {
		splitBits = shardBits
	}
	fmt.Printf("Sharded comparison: %dx%d grid, SDS, %d packets\n\n",
		dim, dim, opts.Packets)
	fmt.Printf("%-9s | %10s %8s %7s %7s %7s %11s %6s\n",
		"schedule", "wall", "states", "shards", "steals", "splits", "shared-hit", "util")

	row := func(name string, wall time.Duration, states int, sched sde.SchedStats) {
		shared := "off"
		if sched.SharedLookups > 0 {
			shared = fmt.Sprintf("%.0f%%", 100*sched.SharedHitRate())
		}
		util := "-"
		if len(sched.WorkerBusy) > 0 {
			util = fmt.Sprintf("%.0f%%", 100*sched.MeanUtilization())
		}
		fmt.Printf("%-9s | %10s %8d %7d %7d %7d %11s %6s\n",
			name, wall.Round(time.Millisecond), states,
			sched.Shards, sched.Steals, sched.Splits, shared, util)
	}

	plain, err := sde.RunScenario(scenario)
	if err != nil {
		return err
	}
	row("unsharded", plain.Wall(), plain.States(), sde.SchedStats{Shards: 1})

	static, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
		ShardBits:   shardBits,
		Workers:     workers,
		SpecWorkers: specWorkers,
	})
	if err != nil {
		return err
	}
	row("static", static.Sched.Elapsed, static.States(), static.Sched)

	adaptive, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
		Workers:           workers,
		SpecWorkers:       specWorkers,
		MaxSplitBits:      splitBits,
		SplitThreshold:    splitThreshold,
		SharedSolverCache: sharedCache,
		CheckpointDir:     checkpoint,
	})
	if err != nil {
		return err
	}
	row("adaptive", adaptive.Sched.Elapsed, adaptive.States(), adaptive.Sched)

	if static.DScenarios().Cmp(plain.DScenarios()) != 0 ||
		adaptive.DScenarios().Cmp(plain.DScenarios()) != 0 {
		return fmt.Errorf("schedules disagree on dscenario count: unsharded %v static %v adaptive %v",
			plain.DScenarios(), static.DScenarios(), adaptive.DScenarios())
	}
	fmt.Printf("\nAll schedules cover %s dscenarios; violations: %d unsharded, %d static, %d adaptive\n",
		plain.DScenarios(), len(plain.Violations()),
		len(static.Violations()), len(adaptive.Violations()))
	return nil
}

// runWorstCase regenerates the §III-E analysis: the all-branches input on
// k nodes to depth u, comparing the measured COB and SDS state counts with
// the closed forms k*2^(k*u) and k*2^u.
func runWorstCase() error {
	fmt.Println("§III-E worst-case complexity: every instruction of every node branches")
	fmt.Printf("%3s %3s | %12s %12s %7s | %10s %10s %7s\n",
		"k", "u", "COB states", "k*2^(k*u)", "match", "SDS states", "k*2^u", "match")
	for _, tc := range []struct{ k, u int }{
		{1, 2}, {1, 4}, {2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3},
	} {
		cobStates, err := runWorstCaseOnce(tc.k, tc.u, sde.COB)
		if err != nil {
			return err
		}
		sdsStates, err := runWorstCaseOnce(tc.k, tc.u, sde.SDS)
		if err != nil {
			return err
		}
		wantCOB := tc.k * (1 << uint(tc.k*tc.u))
		wantSDS := tc.k * (1 << uint(tc.u))
		fmt.Printf("%3d %3d | %12d %12d %7v | %10d %10d %7v\n",
			tc.k, tc.u, cobStates, wantCOB, cobStates == wantCOB,
			sdsStates, wantSDS, sdsStates == wantSDS)
	}
	return nil
}

func runWorstCaseOnce(k, u int, algo sde.Algorithm) (int, error) {
	b := sde.NewProgramBuilder()
	boot := b.Func("boot")
	boot.MovI(sde.R1, 1)
	boot.Timer("step", sde.R1, sde.R0)
	boot.Ret()
	step := b.Func("step")
	step.Sym(sde.R5, "flip", 1)
	step.BrNZ(sde.R5, "cont")
	step.Label("cont")
	step.MovI(sde.R3, 0)
	step.Load(sde.R4, sde.R3, 0x30)
	step.AddI(sde.R4, sde.R4, 1)
	step.Store(sde.R3, 0x30, sde.R4)
	step.UltI(sde.R6, sde.R4, uint32(u))
	step.BrZ(sde.R6, "stop")
	step.MovI(sde.R1, 1)
	step.Timer("step", sde.R1, sde.R0)
	step.Label("stop")
	step.Ret()
	prog, err := b.Build()
	if err != nil {
		return 0, err
	}
	scenario, err := sde.CustomScenario("worst case", sde.CustomConfig{
		Topology:     sde.Line(k),
		Program:      prog,
		Algorithm:    algo,
		HorizonTicks: uint64(u) + 10,
	})
	if err != nil {
		return 0, err
	}
	report, err := sde.RunScenario(scenario)
	if err != nil {
		return 0, err
	}
	return report.States(), nil
}

// validateWorkerFlag rejects negative worker counts with a clear error
// instead of letting them silently fall back to a default downstream.
func validateWorkerFlag(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("%s must be >= 0 (got %d); 0 means one per CPU", name, n)
	}
	return nil
}

func parseDims(s string) ([]int, error) {
	var dims []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil || d < 2 {
			return nil, fmt.Errorf("invalid dimension %q", part)
		}
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("no dimensions given")
	}
	return dims, nil
}
