// Command sde-bench regenerates the paper's evaluation artifacts: Table I
// (runtime / states / RAM per state mapping algorithm) and the Figure 10
// state- and memory-growth series for the 25-, 49-, and 100-node grid
// scenarios.
//
// Usage:
//
//	sde-bench                 # full sweep at calibrated laptop scale
//	sde-bench -dims 5,7       # selected grid dimensions
//	sde-bench -packets 10     # paper-scale traffic (slow on one core)
//	sde-bench -table1         # only the 100-node Table I
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"sde"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	dimsFlag := flag.String("dims", "5,7,10", "comma-separated grid dimensions to evaluate")
	packets := flag.Uint("packets", 0, "packets per run (0 = calibrated default of 3; the paper uses 10)")
	table1 := flag.Bool("table1", false, "run only the 100-node Table I scenario")
	worstCase := flag.Bool("worstcase", false, "run only the §III-E worst-case complexity table")
	wallCap := flag.Duration("wall", 10*time.Minute, "wall-clock cap per run")
	flag.Parse()

	// Batch tool: trade GC frequency for throughput on large state sets.
	debug.SetGCPercent(600)

	if *worstCase {
		return runWorstCase()
	}

	dims, err := parseDims(*dimsFlag)
	if err != nil {
		return err
	}
	if *table1 {
		dims = []int{10}
	}

	for _, dim := range dims {
		opts := sde.DefaultEvalOptions(dim)
		if *packets > 0 {
			opts.Packets = uint32(*packets)
		}
		for algo, caps := range opts.Caps {
			caps.MaxWall = *wallCap
			opts.Caps[algo] = caps
		}
		fmt.Printf("Running %dx%d grid scenario (%d nodes, %d packets)...\n",
			dim, dim, dim*dim, opts.Packets)
		start := time.Now()
		rows, err := sde.RunGridEvaluation(dim, opts)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Table I — %d node scenario with symbolic packet drops", dim*dim)
		if dim != 10 {
			title = fmt.Sprintf("Evaluation — %d node scenario with symbolic packet drops", dim*dim)
		}
		fmt.Println(sde.FormatTable(title, rows))
		if !*table1 {
			fmt.Println(sde.FigureSeries(dim, rows))
		}
		fmt.Printf("(sweep took %v)\n\n", time.Since(start).Round(time.Second))
	}
	return nil
}

// runWorstCase regenerates the §III-E analysis: the all-branches input on
// k nodes to depth u, comparing the measured COB and SDS state counts with
// the closed forms k*2^(k*u) and k*2^u.
func runWorstCase() error {
	fmt.Println("§III-E worst-case complexity: every instruction of every node branches")
	fmt.Printf("%3s %3s | %12s %12s %7s | %10s %10s %7s\n",
		"k", "u", "COB states", "k*2^(k*u)", "match", "SDS states", "k*2^u", "match")
	for _, tc := range []struct{ k, u int }{
		{1, 2}, {1, 4}, {2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3},
	} {
		cobStates, err := runWorstCaseOnce(tc.k, tc.u, sde.COB)
		if err != nil {
			return err
		}
		sdsStates, err := runWorstCaseOnce(tc.k, tc.u, sde.SDS)
		if err != nil {
			return err
		}
		wantCOB := tc.k * (1 << uint(tc.k*tc.u))
		wantSDS := tc.k * (1 << uint(tc.u))
		fmt.Printf("%3d %3d | %12d %12d %7v | %10d %10d %7v\n",
			tc.k, tc.u, cobStates, wantCOB, cobStates == wantCOB,
			sdsStates, wantSDS, sdsStates == wantSDS)
	}
	return nil
}

func runWorstCaseOnce(k, u int, algo sde.Algorithm) (int, error) {
	b := sde.NewProgramBuilder()
	boot := b.Func("boot")
	boot.MovI(sde.R1, 1)
	boot.Timer("step", sde.R1, sde.R0)
	boot.Ret()
	step := b.Func("step")
	step.Sym(sde.R5, "flip", 1)
	step.BrNZ(sde.R5, "cont")
	step.Label("cont")
	step.MovI(sde.R3, 0)
	step.Load(sde.R4, sde.R3, 0x30)
	step.AddI(sde.R4, sde.R4, 1)
	step.Store(sde.R3, 0x30, sde.R4)
	step.UltI(sde.R6, sde.R4, uint32(u))
	step.BrZ(sde.R6, "stop")
	step.MovI(sde.R1, 1)
	step.Timer("step", sde.R1, sde.R0)
	step.Label("stop")
	step.Ret()
	prog, err := b.Build()
	if err != nil {
		return 0, err
	}
	scenario, err := sde.CustomScenario("worst case", sde.CustomConfig{
		Topology:     sde.Line(k),
		Program:      prog,
		Algorithm:    algo,
		HorizonTicks: uint64(u) + 10,
	})
	if err != nil {
		return 0, err
	}
	report, err := sde.RunScenario(scenario)
	if err != nil {
		return 0, err
	}
	return report.States(), nil
}

func parseDims(s string) ([]int, error) {
	var dims []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil || d < 2 {
			return nil, fmt.Errorf("invalid dimension %q", part)
		}
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("no dimensions given")
	}
	return dims, nil
}
