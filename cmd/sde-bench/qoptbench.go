package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sde"
	"sde/internal/expr"
	"sde/internal/qopt"
	"sde/internal/solver"
)

// qoptQueryResult is one query-stream row of BENCH_qopt.json: the
// runicast prefix workload replayed under one optimizer configuration.
type qoptQueryResult struct {
	Name             string `json:"name"`
	NsPerOp          int64  `json:"ns_per_op"`
	NsPerQuery       int64  `json:"ns_per_query"`
	Gates            int64  `json:"gates"`
	SATCalls         int64  `json:"sat_calls"`
	SlicedQueries    int64  `json:"sliced_queries"`
	SlicedFactors    int64  `json:"sliced_factors"`
	RewriteHits      int64  `json:"rewrite_hits"`
	GatesElided      int64  `json:"gates_elided"`
	ConcretizedReads int64  `json:"concretized_reads"`
}

// qoptEngineResult is one whole-run row of BENCH_qopt.json: the runicast
// scenario executed end to end with the optimizer on or off.
type qoptEngineResult struct {
	Algorithm        string `json:"algorithm"`
	Optimized        bool   `json:"optimized"`
	WallNs           int64  `json:"wall_ns"`
	States           int    `json:"states"`
	Queries          int64  `json:"queries"`
	Gates            int64  `json:"gates"`
	SlicedQueries    int64  `json:"sliced_queries"`
	RewriteHits      int64  `json:"rewrite_hits"`
	GatesElided      int64  `json:"gates_elided"`
	ConcretizedReads int64  `json:"concretized_reads"`
}

// qoptBenchReport is the BENCH_qopt.json document: the query-stream
// ablation (full pipeline, one stage off at a time, everything off) and
// the end-to-end runicast runs per mapping algorithm.
type qoptBenchReport struct {
	Benchmark string    `json:"benchmark"`
	Generated time.Time `json:"generated"`
	Pairs     int       `json:"pairs"`
	Depth     int       `json:"depth"`
	Queries   int       `json:"queries"`
	Reps      int       `json:"reps"`

	QueryStream []qoptQueryResult  `json:"query_stream"`
	EngineRuns  []qoptEngineResult `json:"engine_runs"`

	// Headline acceptance ratios: unoptimized / optimized on the query
	// stream. The acceptance bar is ≥ 2x on at least one of them.
	GateReduction float64 `json:"gate_reduction"`
	Speedup       float64 `json:"speedup"`
}

// runQoptBench measures the query-optimization pipeline and writes
// BENCH_qopt.json — the artifact CI uploads and the README solver-stack
// section quotes.
func runQoptBench(out string, reps int) error {
	if reps < 1 {
		return fmt.Errorf("-reps must be at least 1 (got %d)", reps)
	}
	const pairs, depth = 4, 8
	rep := qoptBenchReport{
		Benchmark: "QueryOptimizer",
		Generated: time.Now().UTC(),
		Pairs:     pairs,
		Depth:     depth,
		Reps:      reps,
	}
	rep.Queries = len(solver.RunicastPrefixQueries(expr.NewBuilder(), pairs, depth))

	// Caching layers off in every mode so the comparison isolates what
	// the optimizer saves per encoded query, mirroring
	// BenchmarkQueryOptimizer.
	base := solver.Options{
		DisableCache:       true,
		DisablePool:        true,
		DisableFastPath:    true,
		DisablePartition:   true,
		DisableSubsumption: true,
	}
	measure := func(name string, optimized bool, mutate func(*solver.Options)) qoptQueryResult {
		var best time.Duration
		var stats solver.Stats
		for r := 0; r < reps; r++ {
			// Fresh builder per rep: expression hash-consing and the
			// rewrite memo must not carry over between reps.
			eb := expr.NewBuilder()
			qs := solver.RunicastPrefixQueries(eb, pairs, depth)
			opts := base
			if optimized {
				opts.Optimizer = qopt.New(eb)
			}
			if mutate != nil {
				mutate(&opts)
			}
			s := solver.NewWithOptions(opts)
			sess := s.NewSession()
			start := time.Now()
			for j, q := range qs {
				if _, err := s.FeasibleWith(sess, q.Prefix, q.Extra); err != nil {
					fmt.Fprintf(os.Stderr, "sde-bench: %s query %d: %v\n", name, j, err)
					os.Exit(1)
				}
			}
			elapsed := time.Since(start)
			if r == 0 || elapsed < best {
				best = elapsed
				stats = s.Stats()
			}
		}
		return qoptQueryResult{
			Name:          name,
			NsPerOp:       best.Nanoseconds(),
			NsPerQuery:    best.Nanoseconds() / int64(rep.Queries),
			Gates:         stats.Gates,
			SATCalls:      stats.SATCalls,
			SlicedQueries: stats.SlicedQueries,
			SlicedFactors: stats.SlicedFactors,
			RewriteHits:   stats.RewriteHits,
			GatesElided:   stats.GatesElided,
		}
	}

	opt := measure("optimized", true, nil)
	rep.QueryStream = []qoptQueryResult{
		opt,
		measure("no-slicing", true, func(o *solver.Options) { o.DisableSlicing = true }),
		measure("no-rewrite", true, func(o *solver.Options) { o.DisableRewrite = true }),
		measure("unoptimized", false, nil),
	}
	unopt := rep.QueryStream[len(rep.QueryStream)-1]
	if opt.Gates > 0 {
		rep.GateReduction = float64(unopt.Gates) / float64(opt.Gates)
	}
	if opt.NsPerOp > 0 {
		rep.Speedup = float64(unopt.NsPerOp) / float64(opt.NsPerOp)
	}

	// End-to-end: the runicast scenario per mapping algorithm, optimizer
	// on and off, with symbolic drops so the solver is actually
	// exercised. The state counts must agree — the optimizer is a pure
	// encoding-cost lever.
	for _, algo := range []sde.Algorithm{sde.COB, sde.COW, sde.SDS} {
		var states [2]int
		for i, optimized := range []bool{true, false} {
			scenario, err := sde.RunicastScenario(sde.RunicastOptions{
				K:         3,
				Algorithm: algo,
				Packets:   2,
				Failures:  sde.FailurePlan{DropFirst: map[int]bool{0: true, 1: true}},
			})
			if err != nil {
				return err
			}
			if !optimized {
				scenario = scenario.WithoutQueryOptimizer()
			}
			report, err := sde.RunScenario(scenario)
			if err != nil {
				return err
			}
			st := report.SolverStats()
			states[i] = report.States()
			rep.EngineRuns = append(rep.EngineRuns, qoptEngineResult{
				Algorithm:        algo.String(),
				Optimized:        optimized,
				WallNs:           report.Wall().Nanoseconds(),
				States:           report.States(),
				Queries:          st.Queries,
				Gates:            st.Gates,
				SlicedQueries:    st.SlicedQueries,
				RewriteHits:      st.RewriteHits,
				GatesElided:      st.GatesElided,
				ConcretizedReads: st.ConcretizedReads,
			})
		}
		if states[0] != states[1] {
			return fmt.Errorf("%v: optimizer changed the state count: %d optimized, %d unoptimized",
				algo, states[0], states[1])
		}
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("Query-optimizer bench (%d pairs, depth %d, %d queries, best of %d):\n",
		pairs, depth, rep.Queries, reps)
	for _, row := range rep.QueryStream {
		fmt.Printf("  %-12s %12s  gates=%-6d sliced=%-4d elided=%d\n",
			row.Name, time.Duration(row.NsPerOp), row.Gates, row.SlicedQueries, row.GatesElided)
	}
	fmt.Printf("  gate reduction: %.2fx  speedup: %.2fx  → %s\n",
		rep.GateReduction, rep.Speedup, out)
	return nil
}
