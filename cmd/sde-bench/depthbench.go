package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"sde"
	"sde/internal/dist"
)

// The depth-partitioning bench: a deep-chain workload with zero
// shardable decision sites (sde.DeepChainScenario), so the static
// bit-partition dimension is useless and depth-horizon continuation
// leases are the only way to spread the run over a fleet. Each
// configuration stands up a real coordinator plus N in-process workers
// over loopback TCP, submits the job with a depth horizon, and measures
// submission-to-done wall clock. Every distributed digest is checked
// against the in-process horizon-partitioned oracle.
//
// Worker links are routed through an in-bench proxy that imposes a
// fixed one-way delay (depthBenchLinkDelay) on every protocol message,
// emulating a fleet spread across a real network. That keeps the
// measured quantity — how well continuation leases keep a fleet busy —
// meaningful regardless of host core count: a single worker pays every
// lease grant, frontier ship, and continuation hand-off serially, while
// a fleet pipelines them level by level. The delay and the host CPU
// count are both recorded in the JSON so the numbers can be read in
// context; on a many-core host the same fan-out additionally buys
// CPU-parallel lease execution on top of the latency hiding measured
// here.

const (
	depthBenchK       = 6
	depthBenchTicks   = 48
	depthBenchIters   = 96
	depthBenchHorizon = 400
	depthBenchFanout  = 4
	depthBenchCases   = 8
	// depthBenchLinkDelay is the emulated one-way worker-link latency
	// (~a geo-distributed fleet; 150ms RTT).
	depthBenchLinkDelay = 75 * time.Millisecond
)

// depthBenchRun is one fleet size of one algorithm.
type depthBenchRun struct {
	Workers int   `json:"workers"`
	NsPerOp int64 `json:"ns_per_op"` // submission to job done (best of reps)
	// DigestMatch records that every rep's distributed digest equalled
	// the in-process oracle digest — the bit-identity acceptance bit.
	DigestMatch bool `json:"digest_match"`
	// Suspensions and ContinuationLeases count the depth dimension in
	// action on the best rep's coordinator.
	Suspensions        int `json:"suspensions"`
	ContinuationLeases int `json:"continuation_leases"`
}

// depthBenchAlgo is one algorithm's scaling column.
type depthBenchAlgo struct {
	Algorithm string          `json:"algorithm"`
	Digest    string          `json:"digest"` // in-process oracle
	Runs      []depthBenchRun `json:"runs"`
	// Speedup4W is wall(1 worker) / wall(4 workers). COB frontiers
	// slice along dscenario rows and scale; COW/SDS frontiers are
	// fan-out-1 continuation chains and stay near 1x by design.
	Speedup4W float64 `json:"speedup_4w"`
}

// depthBenchReport is the BENCH_depth.json document.
type depthBenchReport struct {
	Benchmark string    `json:"benchmark"`
	Generated time.Time `json:"generated"`
	Reps      int       `json:"reps"`

	Workload struct {
		Desc    string `json:"desc"`
		K       int    `json:"k"`
		Ticks   uint32 `json:"ticks"`
		Iters   uint32 `json:"iters"`
		Horizon uint64 `json:"horizon"`
		Fanout  int    `json:"fanout"`
		// LinkDelayMs is the emulated one-way worker-link latency; a
		// lone worker pays it serially per lease, a fleet pipelines it.
		LinkDelayMs int `json:"link_delay_ms"`
		// HostCPUs records the cores the fleet ran on: extra
		// CPU-parallel speedup on top of the latency hiding scales with
		// this.
		HostCPUs int `json:"host_cpus"`
	} `json:"workload"`

	Algorithms []depthBenchAlgo `json:"algorithms"`

	// Speedup4W is the headline: the COB column's 4-worker speedup on a
	// workload whose MaxShardBits() is zero.
	Speedup4W float64 `json:"speedup_4w"`
}

// depthBenchSpec is the declarative job every coordinator materialises.
func depthBenchSpec(algo string) sde.ScenarioSpec {
	return sde.ScenarioSpec{
		Workload:  "deepchain",
		Topology:  fmt.Sprintf("line:%d", depthBenchK),
		Algorithm: algo,
		Ticks:     depthBenchTicks,
		Iters:     depthBenchIters,
	}
}

// delayProxy forwards a worker connection to the coordinator, imposing
// a fixed one-way delay on every chunk in both directions — the bench's
// emulated fleet link.
func delayProxy(worker, coord net.Conn, delay time.Duration) {
	pump := func(dst, src net.Conn) {
		defer dst.Close()
		buf := make([]byte, 64<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				time.Sleep(delay)
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	go pump(coord, worker)
	go pump(worker, coord)
}

// depthBenchFleet runs one job on a fresh coordinator with `workers`
// loopback workers and returns the wall time, the job digest, and the
// coordinator's depth-dimension counters.
func depthBenchFleet(spec sde.ScenarioSpec, workers int) (time.Duration, string, int, int, error) {
	c := dist.NewCoordinator(dist.Options{RetryMillis: 5})
	defer c.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, "", 0, 0, err
	}
	go c.Serve(l)

	// Workers dial the delay proxy, not the coordinator directly.
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, "", 0, 0, err
	}
	defer pl.Close()
	go func() {
		for {
			wc, err := pl.Accept()
			if err != nil {
				return
			}
			cc, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				wc.Close()
				return
			}
			delayProxy(wc, cc, depthBenchLinkDelay)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dirs := make([]string, 0, workers)
	defer func() {
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}()
	for i := 0; i < workers; i++ {
		dir, err := os.MkdirTemp("", "sde-depth-bench-*")
		if err != nil {
			return 0, "", 0, 0, err
		}
		dirs = append(dirs, dir)
		opts := dist.WorkerOptions{Name: fmt.Sprintf("w%d", i), WorkDir: dir}
		go dist.RunWorker(ctx, pl.Addr().String(), opts)
	}

	start := time.Now()
	id, err := c.AddJobWith(spec, dist.JobOptions{
		TestCases:     depthBenchCases,
		DepthHorizon:  depthBenchHorizon,
		HorizonFanout: depthBenchFanout,
	})
	if err != nil {
		return 0, "", 0, 0, err
	}
	select {
	case <-c.WaitJob(id):
	case <-time.After(10 * time.Minute):
		return 0, "", 0, 0, fmt.Errorf("depth bench: job did not finish in 10m")
	}
	elapsed := time.Since(start)
	st, ok := c.JobStatus(id)
	if !ok {
		return 0, "", 0, 0, fmt.Errorf("depth bench: job vanished")
	}
	if st.State != dist.JobDone {
		return 0, "", 0, 0, fmt.Errorf("depth bench: job state %s (%s)", st.State, st.Error)
	}
	reg := c.Registry()
	susp := int(reg.Value("sde_lease_suspensions_total", nil))
	conts := int(reg.Value("sde_continuation_leases_total", nil))
	return elapsed, st.Digest, susp, conts, nil
}

// runDepthBench measures depth-horizon partitioning wall-clock scaling
// at 1/2/4 workers per algorithm and writes the results as JSON.
func runDepthBench(out string, reps int) error {
	if reps < 1 {
		return fmt.Errorf("-reps must be at least 1 (got %d)", reps)
	}
	rep := depthBenchReport{
		Benchmark: "DepthPartitioning",
		Generated: time.Now().UTC(),
		Reps:      reps,
	}
	rep.Workload.Desc = fmt.Sprintf(
		"deepchain line:%d — relay drops on every hop (none shardable), %d-tick concrete mixing tail, %v one-way emulated worker link",
		depthBenchK, depthBenchTicks, depthBenchLinkDelay)
	rep.Workload.K = depthBenchK
	rep.Workload.Ticks = depthBenchTicks
	rep.Workload.Iters = depthBenchIters
	rep.Workload.Horizon = depthBenchHorizon
	rep.Workload.Fanout = depthBenchFanout
	rep.Workload.LinkDelayMs = int(depthBenchLinkDelay / time.Millisecond)
	rep.Workload.HostCPUs = runtime.NumCPU()

	for _, algo := range []string{"cob", "cow", "sds"} {
		spec := depthBenchSpec(algo)
		scenario, err := spec.Scenario()
		if err != nil {
			return err
		}
		if bits := scenario.MaxShardBits(); bits != 0 {
			return fmt.Errorf("depth bench: workload has %d shardable bits, want 0", bits)
		}
		oracleRep, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
			DepthHorizon:  depthBenchHorizon,
			HorizonFanout: depthBenchFanout,
		})
		if err != nil {
			return err
		}
		oracle, err := oracleRep.Digest(depthBenchCases)
		if err != nil {
			return err
		}

		col := depthBenchAlgo{Algorithm: algo, Digest: oracle}
		var wall1, wall4 time.Duration
		for _, workers := range []int{1, 2, 4} {
			run := depthBenchRun{Workers: workers, DigestMatch: true}
			var best time.Duration
			for r := 0; r < reps; r++ {
				elapsed, digest, susp, conts, err := depthBenchFleet(spec, workers)
				if err != nil {
					return fmt.Errorf("%s/%dw: %w", algo, workers, err)
				}
				if digest != oracle {
					run.DigestMatch = false
					return fmt.Errorf("%s/%dw: distributed digest %s != in-process %s",
						algo, workers, digest, oracle)
				}
				if r == 0 || elapsed < best {
					best = elapsed
					run.Suspensions = susp
					run.ContinuationLeases = conts
				}
			}
			run.NsPerOp = best.Nanoseconds()
			col.Runs = append(col.Runs, run)
			switch workers {
			case 1:
				wall1 = best
			case 4:
				wall4 = best
			}
		}
		if wall4 > 0 {
			col.Speedup4W = float64(wall1) / float64(wall4)
		}
		if algo == "cob" {
			rep.Speedup4W = col.Speedup4W
		}
		rep.Algorithms = append(rep.Algorithms, col)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("Depth-partitioning bench (best of %d, horizon=%d fanout=%d):\n",
		reps, depthBenchHorizon, depthBenchFanout)
	for _, col := range rep.Algorithms {
		fmt.Printf("  %s:\n", col.Algorithm)
		for _, r := range col.Runs {
			fmt.Printf("    %dw %12s  digest-match=%-5v suspensions=%-4d cont-leases=%d\n",
				r.Workers, time.Duration(r.NsPerOp), r.DigestMatch,
				r.Suspensions, r.ContinuationLeases)
		}
		fmt.Printf("    4-worker speedup: %.2fx\n", col.Speedup4W)
	}
	fmt.Printf("  headline (cob) 4-worker speedup: %.2fx  → %s\n", rep.Speedup4W, out)
	return nil
}
