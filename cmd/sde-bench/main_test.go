package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseDims(t *testing.T) {
	got, err := parseDims("5,7,10")
	if err != nil || !reflect.DeepEqual(got, []int{5, 7, 10}) {
		t.Errorf("parseDims = %v, %v", got, err)
	}
	got, err = parseDims(" 3 , 4 ")
	if err != nil || !reflect.DeepEqual(got, []int{3, 4}) {
		t.Errorf("parseDims with spaces = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "1", "5,,x", "0"} {
		if _, err := parseDims(bad); err == nil {
			t.Errorf("parseDims(%q) accepted", bad)
		}
	}
}

// TestValidateWorkerFlag: negative -workers/-spec-workers must be
// rejected with an error naming the flag, not silently mapped to a
// default worker count.
func TestValidateWorkerFlag(t *testing.T) {
	cases := []struct {
		name string
		n    int
		ok   bool
	}{
		{"-workers", 0, true},
		{"-workers", 8, true},
		{"-workers", -1, false},
		{"-spec-workers", 0, true},
		{"-spec-workers", 4, true},
		{"-spec-workers", -1, false},
		{"-spec-workers", -100, false},
	}
	for _, tt := range cases {
		err := validateWorkerFlag(tt.name, tt.n)
		if tt.ok && err != nil {
			t.Errorf("validateWorkerFlag(%q, %d) = %v, want nil", tt.name, tt.n, err)
		}
		if !tt.ok {
			if err == nil {
				t.Errorf("validateWorkerFlag(%q, %d) accepted a negative count", tt.name, tt.n)
			} else if !strings.Contains(err.Error(), tt.name) {
				t.Errorf("error %q does not name the flag %q", err, tt.name)
			}
		}
	}
}
