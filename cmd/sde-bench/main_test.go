package main

import (
	"reflect"
	"testing"
)

func TestParseDims(t *testing.T) {
	got, err := parseDims("5,7,10")
	if err != nil || !reflect.DeepEqual(got, []int{5, 7, 10}) {
		t.Errorf("parseDims = %v, %v", got, err)
	}
	got, err = parseDims(" 3 , 4 ")
	if err != nil || !reflect.DeepEqual(got, []int{3, 4}) {
		t.Errorf("parseDims with spaces = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "1", "5,,x", "0"} {
		if _, err := parseDims(bad); err == nil {
			t.Errorf("parseDims(%q) accepted", bad)
		}
	}
}
