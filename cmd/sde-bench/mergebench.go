package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sde"
)

// mergeBenchResult is one mode (merging on or off) of one workload in
// BENCH_merge.json.
type mergeBenchResult struct {
	Name    string `json:"name"`
	Merge   bool   `json:"merge"`
	NsPerOp int64  `json:"ns_per_op"` // one full scenario run (best of reps)

	Instructions uint64 `json:"instructions"`
	States       int    `json:"states"` // identical on/off by construction
	// PeakLiveFrontier is the largest scheduler frontier any sample saw:
	// live states minus states hidden inside merged representatives —
	// the quantity merging exists to shrink.
	PeakLiveFrontier int     `json:"peak_live_frontier"`
	AvgLiveFrontier  float64 `json:"avg_live_frontier"`

	Merges     uint64 `json:"merges,omitempty"`
	Candidates uint64 `json:"merge_candidates,omitempty"`
	Rejects    uint64 `json:"merge_rejects,omitempty"`
	PeakMerged int    `json:"peak_merged_states,omitempty"`
	MaxMembers int    `json:"max_members,omitempty"`
}

// mergeBenchWorkload is one workload's merge-on-vs-off comparison.
type mergeBenchWorkload struct {
	Name  string             `json:"name"`
	Desc  string             `json:"desc"`
	Modes []mergeBenchResult `json:"modes"`
	// FrontierReduction is unmerged peak live frontier over merged peak
	// live frontier; InstrReduction the same ratio for executed
	// instructions (reps run shared events once instead of per member).
	FrontierReduction float64 `json:"frontier_reduction"`
	InstrReduction    float64 `json:"instr_reduction"`
}

// mergeBenchReport is the BENCH_merge.json document: ITE-based state
// merging versus plain exploration. Outputs are bit-identical by
// construction (pinned by the on/off differential oracles); the bench
// measures what merging buys — frontier size and executed instructions —
// and what it costs in wall time on workloads where little merges.
type mergeBenchReport struct {
	Benchmark string    `json:"benchmark"`
	Generated time.Time `json:"generated"`
	Reps      int       `json:"reps"`

	Workloads []mergeBenchWorkload `json:"workloads"`

	// FrontierReduction is the diamond workload's headline ratio — the
	// acceptance criterion tracks that it is measurably above 1.
	FrontierReduction float64 `json:"frontier_reduction"`
}

// mergeDiamondScenario builds the headline workload: every node samples
// one symbolic sensor word at boot and runs `diamonds` two-way branches
// on its bits, writing a branch-dependent value to one accumulator word
// each — 2^diamonds sibling states per node that differ at a handful of
// locations. Afterwards each node runs `ticks` rounds of purely concrete
// mixing arithmetic on a staggered timer (per-node offsets keep event
// times disjoint, so the engine's pop-time order gate always allows a
// merged representative to execute through). Merging collapses each
// node's sibling fan into one rep that executes the concrete tail once;
// unmerged exploration executes it 2^diamonds times.
func mergeDiamondScenario(nodes, diamonds, ticks, iters int) (sde.Scenario, error) {
	period := uint32(nodes + 2)

	b := sde.NewProgramBuilder()
	boot := b.Func("boot")
	boot.NodeID(sde.R9)
	boot.AddI(sde.R8, sde.R9, 2) // per-node stagger: node i senses at t=2+i
	boot.Timer("sense", sde.R8, sde.R0)
	boot.Ret()

	sense := b.Func("sense")
	sense.Sym(sde.R1, "sensor", 32)
	sense.MovI(sde.R7, 0)
	for d := 0; d < diamonds; d++ {
		arm := fmt.Sprintf("d%darm", d)
		done := fmt.Sprintf("d%ddone", d)
		sense.LShrI(sde.R2, sde.R1, uint32(d))
		sense.AndI(sde.R2, sde.R2, 1)
		sense.BrNZ(sde.R2, arm)
		sense.MovI(sde.R3, uint32(100+d))
		sense.Jmp(done)
		sense.Label(arm)
		sense.AddI(sde.R3, sde.R1, uint32(7+d))
		sense.Label(done)
		sense.Store(sde.R7, uint32(0x40+4*d), sde.R3)
	}
	sense.MovI(sde.R8, period)
	sense.Timer("tick", sde.R8, sde.R0)
	sense.Ret()

	tick := b.Func("tick")
	tick.NodeID(sde.R2)
	tick.AddI(sde.R2, sde.R2, 0x9e37)
	tick.MovI(sde.R3, uint32(iters))
	tick.Label("loop")
	tick.ShlI(sde.R4, sde.R2, 13)
	tick.Xor(sde.R2, sde.R2, sde.R4)
	tick.LShrI(sde.R4, sde.R2, 17)
	tick.Xor(sde.R2, sde.R2, sde.R4)
	tick.ShlI(sde.R4, sde.R2, 5)
	tick.Xor(sde.R2, sde.R2, sde.R4)
	tick.SubI(sde.R3, sde.R3, 1)
	tick.BrNZ(sde.R3, "loop")
	tick.MovI(sde.R7, 0)
	tick.Store(sde.R7, 0x60, sde.R2)
	tick.Load(sde.R6, sde.R7, 0x64)
	tick.AddI(sde.R6, sde.R6, 1)
	tick.Store(sde.R7, 0x64, sde.R6)
	tick.UltI(sde.R5, sde.R6, uint32(ticks))
	tick.BrZ(sde.R5, "stop")
	tick.MovI(sde.R8, period)
	tick.Timer("tick", sde.R8, sde.R0)
	tick.Label("stop")
	tick.Ret()

	prog, err := b.Build()
	if err != nil {
		return sde.Scenario{}, err
	}
	horizon := uint64(nodes+2) + uint64(ticks+2)*uint64(period)
	return sde.CustomScenario("merge diamond", sde.CustomConfig{
		Topology:     sde.Line(nodes),
		Program:      prog,
		Algorithm:    sde.SDS,
		HorizonTicks: horizon,
	})
}

// runMergeBench measures state merging against plain exploration on the
// branching diamond workload (headline) and the paper's grid collect with
// symbolic route drops (the realistic case, where structural merge
// opportunities are rare), and writes the results as JSON.
func runMergeBench(out string, reps int) error {
	if reps < 1 {
		return fmt.Errorf("-reps must be at least 1 (got %d)", reps)
	}
	rep := mergeBenchReport{
		Benchmark: "StateMerging",
		Generated: time.Now().UTC(),
		Reps:      reps,
	}

	measure := func(name string, build func() (sde.Scenario, error), merge bool) (mergeBenchResult, error) {
		var best time.Duration
		var res mergeBenchResult
		for r := 0; r < reps; r++ {
			scenario, err := build()
			if err != nil {
				return mergeBenchResult{}, err
			}
			scenario = scenario.WithSampling(16)
			if merge {
				scenario = scenario.WithMerging()
			}
			start := time.Now()
			report, err := sde.RunScenario(scenario)
			if err != nil {
				return mergeBenchResult{}, fmt.Errorf("%s: %w", name, err)
			}
			elapsed := time.Since(start)
			if r == 0 || elapsed < best {
				best = elapsed
				peak, sum := 0, 0.0
				samples := report.Samples()
				for _, sm := range samples {
					live := sm.States - sm.MergedStates
					if live > peak {
						peak = live
					}
					sum += float64(live)
				}
				avg := 0.0
				if len(samples) > 0 {
					avg = sum / float64(len(samples))
				}
				ms := report.MergeStats()
				res = mergeBenchResult{
					Name:             name,
					Merge:            merge,
					NsPerOp:          best.Nanoseconds(),
					Instructions:     report.Instructions(),
					States:           report.States(),
					PeakLiveFrontier: peak,
					AvgLiveFrontier:  avg,
					Merges:           ms.Merges,
					Candidates:       ms.Candidates,
					Rejects:          ms.Rejects,
					PeakMerged:       ms.PeakMerged,
					MaxMembers:       ms.MaxMembers,
				}
			}
		}
		return res, nil
	}

	workloads := []struct {
		name, desc string
		headline   bool
		build      func() (sde.Scenario, error)
	}{
		{
			name:     "diamond",
			desc:     "6-node line, 16 symbolic siblings per node from 4 boot diamonds, 30 concrete mixing ticks",
			headline: true,
			build: func() (sde.Scenario, error) {
				return mergeDiamondScenario(6, 4, 30, 500)
			},
		},
		{
			name: "collect",
			desc: "5x5 grid collect, 3 packets, symbolic route drops",
			build: func() (sde.Scenario, error) {
				return sde.GridCollectScenario(sde.GridCollectOptions{
					Dim:       5,
					Algorithm: sde.SDS,
					Packets:   3,
					DropNodes: sde.DropRoute,
				})
			},
		},
	}

	for _, w := range workloads {
		wl := mergeBenchWorkload{Name: w.name, Desc: w.desc}
		var off, on mergeBenchResult
		for _, mode := range []bool{false, true} {
			res, err := measure(fmt.Sprintf("%s/merge=%v", w.name, mode), w.build, mode)
			if err != nil {
				return err
			}
			wl.Modes = append(wl.Modes, res)
			if mode {
				on = res
			} else {
				off = res
			}
		}
		if on.States != off.States {
			return fmt.Errorf("%s: merging changed the state count (%d vs %d) — soundness bug",
				w.name, on.States, off.States)
		}
		if on.PeakLiveFrontier > 0 {
			wl.FrontierReduction = float64(off.PeakLiveFrontier) / float64(on.PeakLiveFrontier)
		}
		if on.Instructions > 0 {
			wl.InstrReduction = float64(off.Instructions) / float64(on.Instructions)
		}
		if w.headline {
			rep.FrontierReduction = wl.FrontierReduction
		}
		rep.Workloads = append(rep.Workloads, wl)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("State-merging bench (best of %d):\n", reps)
	for _, wl := range rep.Workloads {
		fmt.Printf("  %s (%s):\n", wl.Name, wl.Desc)
		for _, m := range wl.Modes {
			fmt.Printf("    merge=%-5v %12s  instrs=%-9d peak-frontier=%-6d avg-frontier=%-8.1f merges=%-5d peak-merged=%d\n",
				m.Merge, time.Duration(m.NsPerOp), m.Instructions,
				m.PeakLiveFrontier, m.AvgLiveFrontier, m.Merges, m.PeakMerged)
		}
		fmt.Printf("    frontier reduction: %.2fx  instruction reduction: %.2fx\n",
			wl.FrontierReduction, wl.InstrReduction)
	}
	fmt.Printf("  headline (diamond) frontier reduction: %.2fx  → %s\n", rep.FrontierReduction, out)
	return nil
}
