package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sde"
)

// specBenchResult is one row of BENCH_spec.json: the speculation workload
// run end to end under one pipeline configuration.
type specBenchResult struct {
	Name        string `json:"name"`
	SpecWorkers int    `json:"spec_workers"` // 0 = speculation disabled
	NsPerOp     int64  `json:"ns_per_op"`    // one full scenario run

	SATCalls  int64 `json:"sat_calls"`
	Conflicts int64 `json:"conflicts"`
	Decisions int64 `json:"decisions"`

	SpecSubmitted int64 `json:"spec_submitted"`
	SpecSolves    int64 `json:"spec_solves"`
	SpecElided    int64 `json:"spec_elided"`
	SpecRewinds   int64 `json:"spec_rewinds"`
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
}

// specBenchReport is the BENCH_spec.json document: the speculative-fork
// pipeline versus synchronous per-branch solving on the entangled
// assume-chain workload.
type specBenchReport struct {
	Benchmark   string    `json:"benchmark"`
	Generated   time.Time `json:"generated"`
	Depth       int       `json:"depth"`
	Activations int       `json:"activations"`
	Width       int       `json:"width"`
	Reps        int       `json:"reps"`

	Modes []specBenchResult `json:"modes"`

	// SpeedupAt4Workers is sync wall time over 4-worker pipeline wall
	// time — the headline the issue's acceptance criterion tracks.
	SpeedupAt4Workers float64 `json:"speedup_at_4_workers"`
}

// runSpecBench measures the speculative-fork solver pipeline against
// synchronous solving on SpeculationWorkloadScenario and writes the
// results as JSON — the artifact CI uploads next to the solver and qopt
// benches.
func runSpecBench(out string, reps int) error {
	if reps < 1 {
		return fmt.Errorf("-reps must be at least 1 (got %d)", reps)
	}
	opts := sde.SpeculationWorkloadOptions{
		Algorithm:   sde.SDS,
		Depth:       32,
		Activations: 2,
		Width:       8,
	}
	rep := specBenchReport{
		Benchmark:   "SpeculativePipeline",
		Generated:   time.Now().UTC(),
		Depth:       opts.Depth,
		Activations: opts.Activations,
		Width:       opts.Width,
		Reps:        reps,
	}

	measure := func(name string, specWorkers int) (specBenchResult, error) {
		var best time.Duration
		var res specBenchResult
		for r := 0; r < reps; r++ {
			scenario, err := sde.SpeculationWorkloadScenario(opts)
			if err != nil {
				return specBenchResult{}, err
			}
			if specWorkers > 0 {
				scenario = scenario.WithSpeculation(specWorkers)
			} else {
				scenario = scenario.WithoutSpeculation()
			}
			start := time.Now()
			report, err := sde.RunScenario(scenario)
			if err != nil {
				return specBenchResult{}, fmt.Errorf("%s: %w", name, err)
			}
			elapsed := time.Since(start)
			if r == 0 || elapsed < best {
				best = elapsed
				st := report.SolverStats()
				sp := report.SpecStats()
				res = specBenchResult{
					Name:          name,
					SpecWorkers:   specWorkers,
					NsPerOp:       best.Nanoseconds(),
					SATCalls:      st.SATCalls,
					Conflicts:     st.Conflicts,
					Decisions:     st.Decisions,
					SpecSubmitted: sp.Submitted,
					SpecSolves:    sp.Solves,
					SpecElided:    sp.Elided,
					SpecRewinds:   sp.Rewinds,
					BarrierWaitNs: sp.BarrierWaitNs,
				}
			}
		}
		return res, nil
	}

	var syncNs, w4Ns int64
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"sync", 0},
		{"spec-w1", 1},
		{"spec-w2", 2},
		{"spec-w4", 4},
	} {
		res, err := measure(mode.name, mode.workers)
		if err != nil {
			return err
		}
		rep.Modes = append(rep.Modes, res)
		switch mode.name {
		case "sync":
			syncNs = res.NsPerOp
		case "spec-w4":
			w4Ns = res.NsPerOp
		}
	}
	if w4Ns > 0 {
		rep.SpeedupAt4Workers = float64(syncNs) / float64(w4Ns)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("Speculative-pipeline bench (depth %d, %d activations, best of %d):\n",
		rep.Depth, rep.Activations, reps)
	for _, m := range rep.Modes {
		fmt.Printf("  %-8s %12s  sat=%-4d spec: submitted=%-4d solves=%-3d elided=%d\n",
			m.Name, time.Duration(m.NsPerOp), m.SATCalls,
			m.SpecSubmitted, m.SpecSolves, m.SpecElided)
	}
	fmt.Printf("  speedup at 4 workers: %.2fx  → %s\n", rep.SpeedupAt4Workers, out)
	return nil
}
