package main

import (
	"strings"
	"testing"

	"sde"
)

// The flag-to-scenario translation now lives in sde.ScenarioSpec (tested
// in the root package); here we cover what remains local: flag validation
// and the spec assembled from CLI defaults actually running.

func TestSpecFromFlagsRuns(t *testing.T) {
	spec := sde.ScenarioSpec{
		Workload: "collect", Topology: "line:3", Algorithm: "sds", Packets: 2,
		Drops: "route",
	}
	s, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if report.States() < 3 {
		t.Errorf("states = %d", report.States())
	}
	if !strings.Contains(report.Summary(), "SDS") {
		t.Errorf("summary = %q", report.Summary())
	}
}

// TestValidateWorkerFlag: negative worker counts must be rejected with an
// error naming the flag, not silently mapped to a default.
func TestValidateWorkerFlag(t *testing.T) {
	cases := []struct {
		name string
		n    int
		ok   bool
	}{
		{"-spec-workers", 0, true},
		{"-spec-workers", 1, true},
		{"-spec-workers", 64, true},
		{"-spec-workers", -1, false},
		{"-spec-workers", -8, false},
	}
	for _, tt := range cases {
		err := validateWorkerFlag(tt.name, tt.n)
		if tt.ok && err != nil {
			t.Errorf("validateWorkerFlag(%q, %d) = %v, want nil", tt.name, tt.n, err)
		}
		if !tt.ok {
			if err == nil {
				t.Errorf("validateWorkerFlag(%q, %d) accepted a negative count", tt.name, tt.n)
			} else if !strings.Contains(err.Error(), tt.name) {
				t.Errorf("error %q does not name the flag %q", err, tt.name)
			}
		}
	}
}

// TestShardabilityNoteFlagPath: the flag-driven entry point must warn
// when the assembled scenario has symbolic-dependent branches (candidate
// shard points) but declares no shardable nodes — and stay quiet when the
// scenario is shardable. The service entry point surfaces the same note
// at job submission (covered in internal/dist); both go through
// Scenario.ShardabilityNote so the wording cannot drift.
func TestShardabilityNoteFlagPath(t *testing.T) {
	cases := []struct {
		name     string
		spec     sde.ScenarioSpec
		wantNote bool
	}{
		// threshold reads symbolic sensor inputs, so its branches are
		// candidate shard points even with every drop disabled — the
		// exact shape the warning exists for.
		{"sites-but-no-shardable-nodes", sde.ScenarioSpec{
			Workload: "threshold", Topology: "line:3", Algorithm: "sds",
			Packets: 2, Drops: "none",
		}, true},
		{"shardable", sde.ScenarioSpec{
			Workload: "collect", Topology: "line:3", Algorithm: "sds",
			Packets: 2, Drops: "route",
		}, false},
		// no symbolic-dependent branches at all: nothing to warn about.
		{"no-sites", sde.ScenarioSpec{
			Workload: "collect", Topology: "line:3", Algorithm: "sds",
			Packets: 2, Drops: "none",
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.spec.Scenario()
			if err != nil {
				t.Fatal(err)
			}
			note := s.ShardabilityNote()
			if tc.wantNote {
				if note == "" {
					t.Fatal("expected a shardability note, got none")
				}
				if !strings.Contains(note, "cannot partition") {
					t.Errorf("note %q does not explain the consequence", note)
				}
				if len(s.ShardableSites()) == 0 {
					t.Error("note fired with no shardable sites")
				}
			} else if note != "" {
				t.Errorf("unexpected note for a shardable scenario: %q", note)
			}
		})
	}
}
