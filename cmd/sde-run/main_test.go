package main

import (
	"strings"
	"testing"

	"sde"
)

func TestParseAlgo(t *testing.T) {
	tests := []struct {
		in   string
		want sde.Algorithm
		ok   bool
	}{
		{"cob", sde.COB, true},
		{"COW", sde.COW, true},
		{"Sds", sde.SDS, true},
		{"klee", 0, false},
		{"", 0, false},
	}
	for _, tt := range tests {
		got, err := parseAlgo(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("parseAlgo(%q) err = %v", tt.in, err)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("parseAlgo(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseTopo(t *testing.T) {
	kind, size, err := parseTopo("grid:5")
	if err != nil || kind != "grid" || size != 5 {
		t.Errorf("parseTopo(grid:5) = %q, %d, %v", kind, size, err)
	}
	for _, bad := range []string{"grid", "grid:", "grid:x", "grid:1", ":5"} {
		if _, _, err := parseTopo(bad); err == nil {
			t.Errorf("parseTopo(%q) accepted", bad)
		}
	}
}

func TestParseFailures(t *testing.T) {
	plan, err := parseFailures("dup:0,reboot:3,drop:1,drop:2")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.DuplicateFirst[0] || !plan.RebootOnFirst[3] || !plan.DropFirst[1] || !plan.DropFirst[2] {
		t.Errorf("plan = %+v", plan)
	}
	if plan2, err := parseFailures(""); err != nil || plan2.DropFirst != nil {
		t.Errorf("empty spec: %+v, %v", plan2, err)
	}
	for _, bad := range []string{"dup", "dup:x", "explode:1"} {
		if _, err := parseFailures(bad); err == nil {
			t.Errorf("parseFailures(%q) accepted", bad)
		}
	}
}

func TestBuildScenarioCombos(t *testing.T) {
	good := []struct {
		topo, app, drops, failures string
	}{
		{"grid:4", "collect", "route", ""},
		{"grid:4", "collect", "route+neighbors", ""},
		{"grid:4", "collect", "none", ""},
		{"line:3", "collect", "route", "dup:0"},
		{"mesh:4", "flood", "route", ""},
		{"grid:3", "discovery", "route", ""},
		{"line:3", "discovery", "none", ""},
		{"mesh:3", "discovery", "route", ""},
	}
	for _, tt := range good {
		s, err := buildScenario(tt.topo, tt.app, sde.SDS, 2, tt.drops, tt.failures)
		if err != nil {
			t.Errorf("buildScenario(%+v): %v", tt, err)
			continue
		}
		if s.Description() == "" {
			t.Errorf("buildScenario(%+v): empty description", tt)
		}
	}
	bad := []struct {
		topo, app, drops, failures string
	}{
		{"mesh:4", "collect", "route", ""},      // unsupported combo
		{"grid:4", "flood", "route", ""},        // unsupported combo
		{"grid:4", "collect", "banana", ""},     // bad drop selection
		{"grid:4", "collect", "route", "dup:0"}, // grid rejects extra failures
		{"ring:4", "discovery", "route", ""},    // unknown topology kind
	}
	for _, tt := range bad {
		if _, err := buildScenario(tt.topo, tt.app, sde.SDS, 2, tt.drops, tt.failures); err == nil {
			t.Errorf("buildScenario(%+v) accepted", tt)
		}
	}
}

func TestBuildScenarioRuns(t *testing.T) {
	s, err := buildScenario("line:3", "collect", sde.SDS, 2, "route", "")
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if report.States() < 3 {
		t.Errorf("states = %d", report.States())
	}
	if !strings.Contains(report.Summary(), "SDS") {
		t.Errorf("summary = %q", report.Summary())
	}
}

// TestValidateWorkerFlag: negative worker counts must be rejected with an
// error naming the flag, not silently mapped to a default.
func TestValidateWorkerFlag(t *testing.T) {
	cases := []struct {
		name string
		n    int
		ok   bool
	}{
		{"-spec-workers", 0, true},
		{"-spec-workers", 1, true},
		{"-spec-workers", 64, true},
		{"-spec-workers", -1, false},
		{"-spec-workers", -8, false},
	}
	for _, tt := range cases {
		err := validateWorkerFlag(tt.name, tt.n)
		if tt.ok && err != nil {
			t.Errorf("validateWorkerFlag(%q, %d) = %v, want nil", tt.name, tt.n, err)
		}
		if !tt.ok {
			if err == nil {
				t.Errorf("validateWorkerFlag(%q, %d) accepted a negative count", tt.name, tt.n)
			} else if !strings.Contains(err.Error(), tt.name) {
				t.Errorf("error %q does not name the flag %q", err, tt.name)
			}
		}
	}
}
