package main

import (
	"strings"
	"testing"

	"sde"
)

// The flag-to-scenario translation now lives in sde.ScenarioSpec (tested
// in the root package); here we cover what remains local: flag validation
// and the spec assembled from CLI defaults actually running.

func TestSpecFromFlagsRuns(t *testing.T) {
	spec := sde.ScenarioSpec{
		Workload: "collect", Topology: "line:3", Algorithm: "sds", Packets: 2,
		Drops: "route",
	}
	s, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if report.States() < 3 {
		t.Errorf("states = %d", report.States())
	}
	if !strings.Contains(report.Summary(), "SDS") {
		t.Errorf("summary = %q", report.Summary())
	}
}

// TestValidateWorkerFlag: negative worker counts must be rejected with an
// error naming the flag, not silently mapped to a default.
func TestValidateWorkerFlag(t *testing.T) {
	cases := []struct {
		name string
		n    int
		ok   bool
	}{
		{"-spec-workers", 0, true},
		{"-spec-workers", 1, true},
		{"-spec-workers", 64, true},
		{"-spec-workers", -1, false},
		{"-spec-workers", -8, false},
	}
	for _, tt := range cases {
		err := validateWorkerFlag(tt.name, tt.n)
		if tt.ok && err != nil {
			t.Errorf("validateWorkerFlag(%q, %d) = %v, want nil", tt.name, tt.n, err)
		}
		if !tt.ok {
			if err == nil {
				t.Errorf("validateWorkerFlag(%q, %d) accepted a negative count", tt.name, tt.n)
			} else if !strings.Contains(err.Error(), tt.name) {
				t.Errorf("error %q does not name the flag %q", err, tt.name)
			}
		}
	}
}
