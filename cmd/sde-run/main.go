// Command sde-run executes one SDE scenario and prints its report:
// resource usage, represented dscenarios, assertion violations with
// concrete witnesses, and (optionally) generated test cases.
//
// Usage:
//
//	sde-run -topo grid:5 -algo sds -packets 3 -drops route
//	sde-run -topo line:4 -algo cow -failures dup:0 -testcases 8
//	sde-run -topo mesh:4 -app flood -algo sds
//
// Long runs can be made durable with -checkpoint DIR (periodic frontier
// snapshots plus a progress journal) and continued after a crash with
// -resume DIR; a resumed run is bit-identical to an uninterrupted one.
//
// Feasibility solving overlaps with symbolic execution by default
// (-spec-workers N sizes the solver pool, 0 = one per CPU); if outputs
// ever look wrong, -speculate=false is the first soundness-triage step.
// -cpuprofile/-memprofile write pprof profiles for the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"

	"sde"
	"sde/internal/prof"
	"sde/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-run:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	topoFlag := flag.String("topo", "grid:5", "topology: grid:<dim>, line:<k>, or mesh:<k>")
	appFlag := flag.String("app", "collect",
		"application: collect, flood, discovery, runicast, or threshold")
	algoFlag := flag.String("algo", "sds", "state mapping algorithm: cob, cow, or sds")
	packets := flag.Uint("packets", 3, "packets emitted by the source")
	drops := flag.String("drops", "route", "symbolic drop nodes: route, route+neighbors, none")
	failures := flag.String("failures", "", "extra failures, e.g. dup:0,reboot:3 (node ids)")
	maxStates := flag.Int("max-states", 0, "abort when live states exceed this (0 = unlimited)")
	testcases := flag.Int("testcases", 0, "generate up to N concrete test cases")
	replay := flag.Bool("replay", false, "replay each violation's witness and report reproduction")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	analysis := flag.Bool("analysis", false, "print the state-population analysis block")
	checkpoint := flag.String("checkpoint", "", "write periodic durable checkpoints into this directory")
	resume := flag.String("resume", "", "resume from the checkpoint in this directory (or start fresh into it)")
	qoptFlag := flag.Bool("qopt", true, "query-optimization pipeline (slicing, rewriting, concretization); -qopt=false is the first soundness-triage step")
	speculate := flag.Bool("speculate", true, "speculative-fork solver pipeline (overlap execution with feasibility solving); -speculate=false is the first soundness-triage step")
	specWorkers := flag.Int("spec-workers", 0, "solver workers for the speculative-fork pipeline (0 = one per CPU)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	debug.SetGCPercent(600)

	if err := validateWorkerFlag("-spec-workers", *specWorkers); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	algo, err := parseAlgo(*algoFlag)
	if err != nil {
		return err
	}
	scenario, err := buildScenario(*topoFlag, *appFlag, algo, uint32(*packets), *drops, *failures)
	if err != nil {
		return err
	}
	if *maxStates > 0 {
		scenario = scenario.WithCaps(sde.Caps{MaxStates: *maxStates})
	}
	if !*qoptFlag {
		scenario = scenario.WithoutQueryOptimizer()
	}
	if !*speculate {
		scenario = scenario.WithoutSpeculation()
	} else if *specWorkers > 0 {
		scenario = scenario.WithSpeculation(*specWorkers)
	}
	if *checkpoint != "" && *resume != "" {
		return fmt.Errorf("-checkpoint and -resume are mutually exclusive (resume already checkpoints)")
	}
	if !*jsonOut {
		fmt.Println("Scenario:", scenario.Description())
	}
	var report *sde.Report
	switch {
	case *resume != "":
		report, err = sde.Resume(scenario, *resume)
	case *checkpoint != "":
		report, err = sde.Checkpoint(scenario, *checkpoint)
	default:
		report, err = sde.RunScenario(scenario)
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		return report.WriteJSON(os.Stdout, *testcases)
	}
	if report.Resumed() {
		fmt.Println("resumed from checkpoint:", *resume)
	}
	fmt.Println(report.Summary())
	if *analysis {
		fmt.Print(report.Analysis())
	}
	fmt.Printf("instructions=%d groups=%d peak-mem=%d\n",
		report.Instructions(), report.Groups(), report.PeakMemBytes())

	for _, v := range report.Violations() {
		fmt.Printf("VIOLATION node=%d t=%d: %s\n  witness: %v\n", v.Node, v.Time, v.Msg, v.Model)
		if *replay {
			ok, _, err := report.ReplayViolation(v)
			if err != nil {
				return err
			}
			fmt.Printf("  replay reproduces: %v\n", ok)
		}
	}
	if *testcases > 0 {
		fmt.Printf("test cases (first %d of %s dscenarios):\n", *testcases, report.DScenarios())
		err := report.StreamTestCases(*testcases, func(tc trace.TestCase) error {
			fmt.Println(" ", tc.String())
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// validateWorkerFlag rejects negative worker counts with a clear error
// instead of letting them silently fall back to a default downstream.
func validateWorkerFlag(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("%s must be >= 0 (got %d); 0 means one per CPU", name, n)
	}
	return nil
}

func parseAlgo(s string) (sde.Algorithm, error) {
	switch strings.ToLower(s) {
	case "cob":
		return sde.COB, nil
	case "cow":
		return sde.COW, nil
	case "sds":
		return sde.SDS, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want cob, cow, or sds)", s)
	}
}

func parseTopo(s string) (kind string, size int, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 || parts[0] == "" {
		return "", 0, fmt.Errorf("topology %q: want kind:size", s)
	}
	size, err = strconv.Atoi(parts[1])
	if err != nil || size < 2 {
		return "", 0, fmt.Errorf("topology %q: bad size", s)
	}
	return parts[0], size, nil
}

func buildScenario(topo, app string, algo sde.Algorithm, packets uint32, drops, failures string) (sde.Scenario, error) {
	kind, size, err := parseTopo(topo)
	if err != nil {
		return sde.Scenario{}, err
	}
	extra, err := parseFailures(failures)
	if err != nil {
		return sde.Scenario{}, err
	}
	switch {
	case app == "collect" && kind == "grid":
		sel := sde.DropRoute
		switch drops {
		case "route":
		case "route+neighbors":
			sel = sde.DropRouteAndNeighbors
		case "none":
			sel = sde.DropNone
		default:
			return sde.Scenario{}, fmt.Errorf("unknown drop selection %q", drops)
		}
		if len(extra.DuplicateFirst)+len(extra.RebootOnFirst) > 0 {
			return sde.Scenario{}, fmt.Errorf("-failures is only supported with line topologies")
		}
		return sde.GridCollectScenario(sde.GridCollectOptions{
			Dim: size, Algorithm: algo, Packets: packets, DropNodes: sel,
		})
	case app == "collect" && kind == "line":
		if drops == "route" {
			nodes := make([]int, size)
			for i := range nodes {
				nodes[i] = i
			}
			extra.DropFirst = toSet(nodes)
		}
		return sde.LineCollectScenario(sde.LineCollectOptions{
			K: size, Algorithm: algo, Packets: packets, Failures: extra,
		})
	case app == "flood" && kind == "mesh":
		return sde.FloodScenario(sde.FloodOptions{
			K: size, Algorithm: algo, Packets: packets, DropAll: drops != "none",
		})
	case app == "runicast" && kind == "line":
		return sde.RunicastScenario(sde.RunicastOptions{
			K: size, Algorithm: algo, Packets: packets, Failures: extra,
		})
	case app == "threshold" && kind == "line":
		return sde.ThresholdScenario(sde.ThresholdOptions{
			K: size, Algorithm: algo,
		})
	case app == "discovery":
		var topo sde.Topology
		switch kind {
		case "grid":
			topo = sde.Grid(size, size)
		case "line":
			topo = sde.Line(size)
		case "mesh":
			topo = sde.FullMesh(size)
		default:
			return sde.Scenario{}, fmt.Errorf("unknown topology kind %q", kind)
		}
		return sde.DiscoveryScenario(sde.DiscoveryOptions{
			Topology: topo, Algorithm: algo, Rounds: packets, DropAll: drops != "none",
		})
	default:
		return sde.Scenario{}, fmt.Errorf("unsupported combination app=%q topo=%q", app, kind)
	}
}

func parseFailures(s string) (sde.FailurePlan, error) {
	var plan sde.FailurePlan
	if s == "" {
		return plan, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return plan, fmt.Errorf("failure %q: want kind:node", part)
		}
		node, err := strconv.Atoi(kv[1])
		if err != nil {
			return plan, fmt.Errorf("failure %q: bad node id", part)
		}
		switch kv[0] {
		case "drop":
			plan.DropFirst = addTo(plan.DropFirst, node)
		case "dup":
			plan.DuplicateFirst = addTo(plan.DuplicateFirst, node)
		case "reboot":
			plan.RebootOnFirst = addTo(plan.RebootOnFirst, node)
		default:
			return plan, fmt.Errorf("unknown failure kind %q", kv[0])
		}
	}
	return plan, nil
}

func addTo(set map[int]bool, node int) map[int]bool {
	if set == nil {
		set = make(map[int]bool)
	}
	set[node] = true
	return set
}

func toSet(nodes []int) map[int]bool {
	set := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	return set
}
