// Command sde-run executes one SDE scenario and prints its report:
// resource usage, represented dscenarios, assertion violations with
// concrete witnesses, and (optionally) generated test cases.
//
// Usage:
//
//	sde-run -topo grid:5 -algo sds -packets 3 -drops route
//	sde-run -topo line:4 -algo cow -failures dup:0 -testcases 8
//	sde-run -topo mesh:4 -app flood -algo sds
//
// Long runs can be made durable with -checkpoint DIR (periodic frontier
// snapshots plus a progress journal) and continued after a crash with
// -resume DIR; a resumed run is bit-identical to an uninterrupted one.
//
// Concrete straight-line code runs through a compiled basic-block fast
// path by default; -merge fuses low-divergence sibling states into
// ite-valued representatives (off by default); -reduce prunes orbit
// duplicates under the topology's automorphism group (off by default,
// violation-set-preserving rather than bit-identical); feasibility
// solving overlaps with symbolic execution (-spec-workers N sizes the
// solver pool, 0 = one per CPU). If a run ever looks wrong the triage
// order is -compile=false first, then -merge=false, then -reduce=false,
// then -speculate=false, then -qopt=false.
// -cpuprofile/-memprofile write pprof profiles for the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"sde"
	"sde/internal/prof"
	"sde/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-run:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	topoFlag := flag.String("topo", "grid:5", "topology: grid:<dim>, line:<k>, or mesh:<k>")
	appFlag := flag.String("app", "collect",
		"application: collect, flood, discovery, runicast, or threshold")
	algoFlag := flag.String("algo", "sds", "state mapping algorithm: cob, cow, or sds")
	packets := flag.Uint("packets", 3, "packets emitted by the source")
	drops := flag.String("drops", "route", "symbolic drop nodes: route, route+neighbors, none")
	failures := flag.String("failures", "", "extra failures, e.g. dup:0,reboot:3 (node ids)")
	maxStates := flag.Int("max-states", 0, "abort when live states exceed this (0 = unlimited)")
	testcases := flag.Int("testcases", 0, "generate up to N concrete test cases")
	replay := flag.Bool("replay", false, "replay each violation's witness and report reproduction")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	analysis := flag.Bool("analysis", false, "print the state-population analysis block")
	checkpoint := flag.String("checkpoint", "", "write periodic durable checkpoints into this directory")
	resume := flag.String("resume", "", "resume from the checkpoint in this directory (or start fresh into it)")
	compile := flag.Bool("compile", true, "basic-block compiled fast path for concrete straight-line code; -compile=false is the FIRST soundness-triage step")
	merge := flag.Bool("merge", false, "ITE-based state merging (fuse low-divergence sibling states); off by default, triage after -compile")
	reduce := flag.Bool("reduce", false, "symmetry + partial-order reduction (prune orbit-duplicate states); off by default, triage after -merge")
	qoptFlag := flag.Bool("qopt", true, "query-optimization pipeline (slicing, rewriting, concretization); triage after -compile, -merge, -reduce, and -speculate")
	speculate := flag.Bool("speculate", true, "speculative-fork solver pipeline (overlap execution with feasibility solving); triage after -compile, -merge, and -reduce")
	specWorkers := flag.Int("spec-workers", 0, "solver workers for the speculative-fork pipeline (0 = one per CPU)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	debug.SetGCPercent(600)

	if err := validateWorkerFlag("-spec-workers", *specWorkers); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	// The flags assemble a ScenarioSpec — the same declarative form the
	// exploration service's job API accepts — so the CLI and the service
	// materialise scenarios through one code path.
	spec := sde.ScenarioSpec{
		Workload:  *appFlag,
		Topology:  *topoFlag,
		Algorithm: *algoFlag,
		Packets:   uint32(*packets),
		Drops:     *drops,
		Failures:  *failures,
		MaxStates: *maxStates,
	}
	scenario, err := spec.Scenario()
	if err != nil {
		return err
	}
	if !*compile {
		scenario = scenario.WithoutCompiledIR()
	}
	if *merge {
		scenario = scenario.WithMerging()
	}
	if *reduce {
		scenario = scenario.WithReduction()
	}
	if !*qoptFlag {
		scenario = scenario.WithoutQueryOptimizer()
	}
	// The compiler's static taint pass knows which branches depend on
	// symbolic input. If the program has such candidate shard points but
	// the scenario declares no shardable drop nodes, a sharded run could
	// not partition the space at all — worth a heads-up. The note itself
	// lives on Scenario so the exploration service surfaces the same
	// warning for ScenarioSpec-submitted jobs.
	if note := scenario.ShardabilityNote(); note != "" {
		fmt.Fprintf(os.Stderr, "sde-run: note: %s\n", note)
		if scenario.MaxShardBits() == 0 {
			// Zero shardable bits caps a multi-worker sharded or
			// distributed run at one lease: only a depth horizon
			// (ShardConfig.DepthHorizon / the job API's depth_horizon)
			// could spread it across a pool or fleet.
			fmt.Fprintln(os.Stderr, "sde-run: note: with 0 shardable bits a multi-worker run would sit idle; depth-horizon partitioning (depth_horizon in the job API, DepthHorizon in ShardConfig) fans deep exploration out instead")
		}
	}
	if !*speculate {
		scenario = scenario.WithoutSpeculation()
	} else if *specWorkers > 0 {
		scenario = scenario.WithSpeculation(*specWorkers)
	}
	if *checkpoint != "" && *resume != "" {
		return fmt.Errorf("-checkpoint and -resume are mutually exclusive (resume already checkpoints)")
	}
	if !*jsonOut {
		fmt.Println("Scenario:", scenario.Description())
	}
	var report *sde.Report
	switch {
	case *resume != "":
		report, err = sde.Resume(scenario, *resume)
	case *checkpoint != "":
		report, err = sde.Checkpoint(scenario, *checkpoint)
	default:
		report, err = sde.RunScenario(scenario)
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		return report.WriteJSON(os.Stdout, *testcases)
	}
	if report.Resumed() {
		fmt.Println("resumed from checkpoint:", *resume)
	}
	fmt.Println(report.Summary())
	if *analysis {
		fmt.Print(report.Analysis())
	}
	fmt.Printf("instructions=%d groups=%d peak-mem=%d\n",
		report.Instructions(), report.Groups(), report.PeakMemBytes())

	for _, v := range report.Violations() {
		fmt.Printf("VIOLATION node=%d t=%d: %s\n  witness: %v\n", v.Node, v.Time, v.Msg, v.Model)
		if *replay {
			ok, _, err := report.ReplayViolation(v)
			if err != nil {
				return err
			}
			fmt.Printf("  replay reproduces: %v\n", ok)
		}
	}
	if *testcases > 0 {
		fmt.Printf("test cases (first %d of %s dscenarios):\n", *testcases, report.DScenarios())
		err := report.StreamTestCases(*testcases, func(tc trace.TestCase) error {
			fmt.Println(" ", tc.String())
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// validateWorkerFlag rejects negative worker counts with a clear error
// instead of letting them silently fall back to a default downstream.
func validateWorkerFlag(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("%s must be >= 0 (got %d); 0 means one per CPU", name, n)
	}
	return nil
}
