// Command sde-explore runs KLEE-style single-program symbolic execution
// (the k = 1 special case of SDE) on one of the built-in demo programs and
// prints each explored path with its concrete test case — the workflow of
// the paper's Figure 1.
//
// Usage:
//
//	sde-explore -prog fig1
//	sde-explore -prog triangle -disasm
//	sde-explore -prog overflow
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sde"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sde-explore:", err)
		os.Exit(1)
	}
}

func run() error {
	progName := flag.String("prog", "fig1", "demo program: fig1, triangle, overflow")
	file := flag.String("file", "", "load an assembly program from this file instead of -prog")
	entry := flag.String("entry", "main", "entry function")
	disasm := flag.Bool("disasm", false, "print the program's disassembly first")
	maxPaths := flag.Int("max-paths", 0, "stop after this many paths (0 = all)")
	flag.Parse()

	var prog *sde.Program
	var err error
	if *file != "" {
		src, rerr := os.ReadFile(*file)
		if rerr != nil {
			return rerr
		}
		prog, err = sde.ParseProgram(string(src))
	} else {
		prog, err = buildDemo(*progName)
	}
	if err != nil {
		return err
	}
	if *disasm {
		fmt.Println(prog.Disasm())
	}
	report, err := sde.Explore(prog, *entry, sde.ExploreOptions{MaxPaths: *maxPaths})
	if err != nil {
		return err
	}
	fmt.Printf("explored %d paths (%d instructions)\n", len(report.Paths), report.Instructions)
	for i, p := range report.Paths {
		fmt.Printf("path %d:\n", i+1)
		for _, c := range p.PathCond {
			fmt.Printf("  constraint: %v\n", c)
		}
		names := make([]string, 0, len(p.TestCase))
		for name := range p.TestCase {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("  test case:")
		for _, name := range names {
			fmt.Printf(" %s=%d", name, p.TestCase[name])
		}
		fmt.Println()
		for _, tr := range p.Trace {
			fmt.Printf("  print %q: %v\n", tr.Msg, tr.Val)
		}
	}
	for _, v := range report.Violations {
		fmt.Printf("VIOLATION: %s — witness %v\n", v.Msg, v.Model)
	}
	return nil
}

// buildDemo assembles one of the built-in demo programs.
func buildDemo(name string) (*sde.Program, error) {
	b := sde.NewProgramBuilder()
	f := b.Func("main")
	switch name {
	case "fig1":
		// The paper's Figure 1: four paths over one symbolic input.
		//   if (x == 0) -> path 1
		//   if (x < 50) { if (x > 10) -> path 2 else -> path 3 }
		//   else -> path 4
		f.Sym(sde.R1, "x", 32)
		f.EqI(sde.R2, sde.R1, 0)
		f.BrNZ(sde.R2, "path1")
		f.UltI(sde.R2, sde.R1, 50)
		f.BrZ(sde.R2, "path4")
		f.UltI(sde.R2, sde.R1, 11)
		f.BrNZ(sde.R2, "path3")
		f.Print("path", sde.R1)
		f.MovI(sde.R3, 2)
		f.Ret()
		f.Label("path1")
		f.MovI(sde.R3, 1)
		f.Ret()
		f.Label("path3")
		f.MovI(sde.R3, 3)
		f.Ret()
		f.Label("path4")
		f.MovI(sde.R3, 4)
		f.Ret()
	case "triangle":
		// Classify a triangle from three symbolic 8-bit side lengths;
		// asserts the triangle inequality was validated first.
		f.Sym(sde.R1, "a", 8)
		f.Sym(sde.R2, "b", 8)
		f.Sym(sde.R3, "c", 8)
		// Reject zero sides and inequality violations (assume = prune).
		f.UltI(sde.R4, sde.R1, 1)
		f.EqI(sde.R4, sde.R4, 0)
		f.Assume(sde.R4)
		f.UltI(sde.R4, sde.R2, 1)
		f.EqI(sde.R4, sde.R4, 0)
		f.Assume(sde.R4)
		f.UltI(sde.R4, sde.R3, 1)
		f.EqI(sde.R4, sde.R4, 0)
		f.Assume(sde.R4)
		f.Add(sde.R5, sde.R1, sde.R2) // a+b (9 bits would be safer; inputs are 8-bit)
		f.Ult(sde.R6, sde.R3, sde.R5) // c < a+b
		f.Assume(sde.R6)
		// Classify.
		f.Eq(sde.R7, sde.R1, sde.R2)
		f.Eq(sde.R8, sde.R2, sde.R3)
		f.And(sde.R9, sde.R7, sde.R8)
		f.BrNZ(sde.R9, "equilateral")
		f.Or(sde.R9, sde.R7, sde.R8)
		f.Eq(sde.R10, sde.R1, sde.R3)
		f.Or(sde.R9, sde.R9, sde.R10)
		f.BrNZ(sde.R9, "isosceles")
		f.Print("scalene", sde.R1)
		f.MovI(sde.R11, 1)
		f.Ret()
		f.Label("equilateral")
		f.Print("equilateral", sde.R1)
		f.MovI(sde.R11, 2)
		f.Ret()
		f.Label("isosceles")
		f.Print("isosceles", sde.R1)
		f.MovI(sde.R11, 3)
		f.Ret()
	case "overflow":
		// A classic wraparound bug: asserts x+100 > x, which fails for
		// large x. Symbolic execution finds the witness automatically.
		f.Sym(sde.R1, "x", 32)
		f.AddI(sde.R2, sde.R1, 100)
		f.Ult(sde.R3, sde.R1, sde.R2)
		f.Assert(sde.R3, "x+100 overflowed")
		f.Ret()
	default:
		return nil, fmt.Errorf("unknown demo program %q", name)
	}
	return b.Build()
}
