package main

import (
	"testing"

	"sde"
)

func TestBuildDemoPrograms(t *testing.T) {
	for _, name := range []string{"fig1", "triangle", "overflow"} {
		prog, err := buildDemo(name)
		if err != nil {
			t.Fatalf("buildDemo(%q): %v", name, err)
		}
		if prog.FuncIndex("main") < 0 {
			t.Errorf("%q lacks main", name)
		}
	}
	if _, err := buildDemo("nope"); err == nil {
		t.Error("unknown demo accepted")
	}
}

func TestDemoFig1Paths(t *testing.T) {
	prog, err := buildDemo("fig1")
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.Explore(prog, "main", sde.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Paths) != 4 {
		t.Errorf("fig1 paths = %d, want 4", len(report.Paths))
	}
}

func TestDemoOverflowFindsBug(t *testing.T) {
	prog, err := buildDemo("overflow")
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.Explore(prog, "main", sde.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(report.Violations))
	}
	// The witness must actually overflow: x + 100 wraps.
	x := report.Violations[0].Model["x_n0_0"]
	if (x+100)&0xffffffff >= x {
		t.Errorf("witness x=%d does not overflow", x)
	}
}

func TestDemoTrianglePathsValid(t *testing.T) {
	prog, err := buildDemo("triangle")
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.Explore(prog, "main", sde.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Violations) != 0 {
		t.Errorf("triangle violations: %+v", report.Violations)
	}
	if len(report.Paths) < 3 {
		t.Fatalf("triangle paths = %d, want >= 3 (equilateral/isosceles/scalene)", len(report.Paths))
	}
	for i, p := range report.Paths {
		a := p.TestCase["a_n0_0"]
		b := p.TestCase["b_n0_1"]
		c := p.TestCase["c_n0_2"]
		if a == 0 || b == 0 || c == 0 {
			t.Errorf("path %d test case has a zero side: %d %d %d", i, a, b, c)
		}
		// The program compares in 32-bit registers (the 8-bit inputs are
		// zero-extended), so the sum does not wrap.
		if c >= a+b {
			t.Errorf("path %d violates the assumed inequality: %d %d %d", i, a, b, c)
		}
	}
}
