package sde

import (
	"fmt"

	"sde/internal/vm"
)

// PathResult is one completed execution path of a single-program
// exploration, with its concrete test case (paper Figure 1).
type PathResult = vm.PathResult

// ExploreReport aggregates a single-program exploration.
type ExploreReport = vm.ExploreReport

// ExploreOptions tunes Explore.
type ExploreOptions = vm.ExploreOptions

// Explore symbolically executes a single program from the named entry
// function, following every feasible path and solving one concrete test
// case per path — regular symbolic execution (paper §II-A), the k = 1
// special case of SDE.
func Explore(prog *Program, entry string, opts ExploreOptions) (*ExploreReport, error) {
	ctx := vm.NewContext()
	report, err := vm.Explore(ctx, prog, entry, opts)
	if err != nil {
		return nil, fmt.Errorf("sde: %w", err)
	}
	return report, nil
}
