package sde_test

import (
	"testing"

	"sde"
	"sde/internal/trace"
)

// TestOptimizerSoundness is the query-optimizer's whole-run acceptance
// gate, run repeatedly (-count=20) in CI: on the paper's 25-node grid
// scenario, an optimizer-enabled run and a run with every stage disabled
// must produce identical test-case sets and identical dscenario state
// fingerprints for each mapping algorithm. Model queries bypass the
// optimizer entirely (and always solve on a fresh instance), so the
// generated inputs depend only on the constraints — which the optimizer
// must never change observably.
func TestOptimizerSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-run differential; CI runs it in a dedicated -count=20 step")
	}
	for _, algo := range []sde.Algorithm{sde.COB, sde.COW, sde.SDS} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			build := func() sde.Scenario {
				s, err := sde.GridCollectScenario(sde.GridCollectOptions{
					Dim:          5,
					Algorithm:    algo,
					Packets:      2,
					MaxDropNodes: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			run := func(s sde.Scenario) (*sde.Report, []string) {
				report, err := sde.RunScenario(s)
				if err != nil {
					t.Fatal(err)
				}
				var cases []string
				err = report.StreamTestCases(0, func(tc trace.TestCase) error {
					cases = append(cases, tc.String())
					return nil
				})
				if err != nil {
					t.Fatalf("StreamTestCases: %v", err)
				}
				return report, cases
			}
			on, onCases := run(build())
			off, offCases := run(build().WithoutQueryOptimizer())

			if on.States() != off.States() {
				t.Errorf("states = %d optimized, %d unoptimized", on.States(), off.States())
			}
			if on.DScenarios().Cmp(off.DScenarios()) != 0 {
				t.Errorf("dscenarios = %v optimized, %v unoptimized",
					on.DScenarios(), off.DScenarios())
			}
			onSet, offSet := explodeFingerprints(on), explodeFingerprints(off)
			if len(onSet) != len(offSet) {
				t.Fatalf("%d distinct fingerprints optimized, %d unoptimized",
					len(onSet), len(offSet))
			}
			for fp := range offSet {
				if !onSet[fp] {
					t.Fatal("optimized run is missing a dscenario state fingerprint")
				}
			}
			if len(onCases) != len(offCases) {
				t.Fatalf("%d test cases optimized, %d unoptimized", len(onCases), len(offCases))
			}
			for i := range offCases {
				if onCases[i] != offCases[i] {
					t.Fatalf("test case %d diverges:\n optimized:   %s\n unoptimized: %s",
						i, onCases[i], offCases[i])
				}
			}
		})
	}
}
