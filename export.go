package sde

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"sde/internal/trace"
)

// JSON export of run results for external tooling (dashboards, regression
// tracking). All numbers are final values; the big-integer dscenario count
// travels as a decimal string.

// ReportJSON is the serialisable projection of a Report.
type ReportJSON struct {
	Algorithm    string          `json:"algorithm"`
	Scenario     string          `json:"scenario"`
	Aborted      bool            `json:"aborted"`
	AbortReason  string          `json:"abort_reason,omitempty"`
	WallMS       float64         `json:"wall_ms"`
	VirtualTime  uint64          `json:"virtual_time"`
	Instructions uint64          `json:"instructions"`
	States       int             `json:"states"`
	Duplicates   int             `json:"duplicate_states"`
	Groups       int             `json:"groups"`
	DScenarios   string          `json:"dscenarios"`
	MemBytes     int64           `json:"mem_bytes"`
	PeakMemBytes int64           `json:"peak_mem_bytes"`
	FastBlocks   uint64          `json:"fast_blocks,omitempty"`
	SlowBlocks   uint64          `json:"slow_blocks,omitempty"`
	FoldedInstrs uint64          `json:"folded_instrs,omitempty"`
	Merges       uint64          `json:"merges,omitempty"`
	MergeCands   uint64          `json:"merge_candidates,omitempty"`
	MergeRejects uint64          `json:"merge_rejects,omitempty"`
	PeakMerged   int             `json:"peak_merged_states,omitempty"`
	ReduceChecks uint64          `json:"reduce_checks,omitempty"`
	ReducePins   uint64          `json:"reduce_pins,omitempty"`
	PORCommutes  uint64          `json:"por_commutes,omitempty"`
	Synthesized  int             `json:"synthesized_violations,omitempty"`
	Violations   []ViolationJSON `json:"violations,omitempty"`
	TestCases    []TestCaseJSON  `json:"test_cases,omitempty"`
}

// ViolationJSON is a serialisable assertion failure.
type ViolationJSON struct {
	Node    int               `json:"node"`
	Time    uint64            `json:"time"`
	Msg     string            `json:"msg"`
	Witness map[string]uint64 `json:"witness"`
	// Synthesized marks violations reconstructed by symmetry expansion
	// rather than observed on an executed path (see README, Reduction).
	Synthesized bool `json:"synthesized,omitempty"`
}

// TestCaseJSON is a serialisable concrete test case.
type TestCaseJSON struct {
	Index  int               `json:"index"`
	Inputs map[string]uint64 `json:"inputs"`
}

// JSON builds the serialisable projection, including up to maxTestCases
// solved test cases (0 = none).
func (r *Report) JSON(maxTestCases int) (*ReportJSON, error) {
	out := &ReportJSON{
		Algorithm:    r.res.Algorithm.String(),
		Scenario:     r.scenario.desc,
		Aborted:      r.res.Aborted,
		AbortReason:  r.res.AbortReason,
		WallMS:       float64(r.res.Wall) / float64(time.Millisecond),
		VirtualTime:  r.res.VirtualTime,
		Instructions: r.res.Instructions,
		States:       r.res.FinalStates,
		Duplicates:   r.DuplicateStates(),
		Groups:       r.res.Groups,
		DScenarios:   r.res.DScenarios.String(),
		MemBytes:     r.res.FinalMem,
		PeakMemBytes: r.res.PeakMem,
		FastBlocks:   r.res.VM.FastBlocks,
		SlowBlocks:   r.res.VM.SlowBlocks,
		FoldedInstrs: r.res.VM.FoldedInstrs,
		Merges:       r.res.Merge.Merges,
		MergeCands:   r.res.Merge.Candidates,
		MergeRejects: r.res.Merge.Rejects,
		PeakMerged:   r.res.Merge.PeakMerged,
		ReduceChecks: r.res.Reduce.Checks,
		ReducePins:   r.res.Reduce.Pins,
		PORCommutes:  r.res.Reduce.PORCommutes,
		Synthesized:  r.res.Reduce.Synthesized,
	}
	for _, v := range r.res.Violations {
		out.Violations = append(out.Violations, ViolationJSON{
			Node: v.Node, Time: v.Time, Msg: v.Msg, Witness: v.Model,
			Synthesized: v.Synthesized,
		})
	}
	if maxTestCases > 0 {
		err := r.StreamTestCases(maxTestCases, func(tc trace.TestCase) error {
			out.TestCases = append(out.TestCases, TestCaseJSON{
				Index: tc.Index, Inputs: tc.Inputs,
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteJSON writes the indented JSON projection to w.
func (r *Report) WriteJSON(w io.Writer, maxTestCases int) error {
	obj, err := r.JSON(maxTestCases)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}

// WriteCSV streams the run's metrics time series (the Figure 10 data) to
// w as CSV. Unlike metrics.Series.CSV — which builds a string and leaves
// writing, and hence write-error handling, to the caller — every write
// here is checked, so exporters piping into files see short writes as
// errors instead of silently truncated series.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"wall_ms,virtual_time,states,groups,mem_bytes,instructions,solver_queries,queries_sliced,gates_elided,fast_blocks,slow_blocks,folded_instrs,merged_states,merge_candidates,merge_rejects,reduce_checks,reduce_pins\n"); err != nil {
		return err
	}
	for _, sm := range r.res.Series.Samples() {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			float64(sm.Wall.Microseconds())/1000.0,
			sm.VirtualTime, sm.States, sm.Groups, sm.MemBytes,
			sm.Instructions, sm.SolverQueries, sm.QueriesSliced,
			sm.GatesElided, sm.FastBlocks, sm.SlowBlocks,
			sm.FoldedInstrs, sm.MergedStates, sm.MergeCandidates,
			sm.MergeRejects, sm.ReduceChecks, sm.ReducePins); err != nil {
			return err
		}
	}
	return nil
}
