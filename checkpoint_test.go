package sde_test

// Public checkpoint/resume API: sde.Checkpoint, sde.Resume, and sharded
// resume through ShardConfig.CheckpointDir. The sim-level kill-and-resume
// tests cover mid-run interruption; here we exercise the plumbing — a
// resumed run reproduces the original, Resume falls back to a fresh run
// when no checkpoint exists, and a sharded rerun picks leaves back up
// from their per-shard checkpoints (with a different worker count).

import (
	"testing"

	"sde"
)

func TestCheckpointResume(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)

	// Resume with no checkpoint on disk degrades to a fresh run.
	freshDir := t.TempDir()
	fresh, err := sde.Resume(scenario, freshDir)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Resumed() {
		t.Error("Resume on an empty directory reported Resumed")
	}

	// A checkpointed run leaves a final snapshot; resuming it replays
	// zero events and reproduces the result exactly. This is what makes
	// `sde.Resume` safe to call unconditionally in a crash-restart loop.
	dir := t.TempDir()
	ref, err := sde.Checkpoint(scenario, dir)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Resumed() {
		t.Error("first checkpointed run reported Resumed")
	}
	resumed, err := sde.Resume(scenario, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed() {
		t.Fatal("Resume with a checkpoint on disk did not resume")
	}
	if resumed.States() != ref.States() {
		t.Errorf("states = %d, original run has %d", resumed.States(), ref.States())
	}
	if resumed.DScenarios().Cmp(ref.DScenarios()) != 0 {
		t.Errorf("dscenarios = %v, original run has %v",
			resumed.DScenarios(), ref.DScenarios())
	}
	// Prior wall is carried: the restored series stays monotone and the
	// resumed total can only extend past its last sample. (No comparison
	// against ref.Wall() — the snapshot is taken before the final fsync,
	// so it legitimately trails the uninterrupted total by a little.)
	samples := resumed.Samples()
	for i := 1; i < len(samples); i++ {
		if samples[i].Wall < samples[i-1].Wall {
			t.Fatalf("restored series wall goes backwards at sample %d: %v after %v",
				i, samples[i].Wall, samples[i-1].Wall)
		}
	}
	if n := len(samples); n > 0 && resumed.Wall() < samples[n-1].Wall {
		t.Errorf("resumed wall %v below its own last sample %v",
			resumed.Wall(), samples[n-1].Wall)
	}
	refSet := explodeFingerprints(ref)
	set := explodeFingerprints(resumed)
	if len(set) != len(refSet) {
		t.Fatalf("%d distinct dscenarios, original run has %d", len(set), len(refSet))
	}
	for fp := range refSet {
		if !set[fp] {
			t.Fatal("resumed run is missing a dscenario of the original")
		}
	}
}

func TestShardedCheckpointResume(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
		ShardBits:     1,
		Workers:       2,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Sched.Resumed != 0 {
		t.Errorf("first run resumed %d shards from an empty directory", first.Sched.Resumed)
	}
	if first.DScenarios().Cmp(ref.DScenarios()) != 0 {
		t.Fatalf("checkpointed sharded run dscenarios = %v, want %v",
			first.DScenarios(), ref.DScenarios())
	}

	// Rerun against the same checkpoint directory with a different
	// worker count: every leaf resumes from its finished snapshot.
	second, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
		ShardBits:     1,
		Workers:       1,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Sched.Resumed == 0 {
		t.Error("rerun resumed no shards from the checkpoint directory")
	}
	if second.DScenarios().Cmp(ref.DScenarios()) != 0 {
		t.Errorf("resumed sharded run dscenarios = %v, want %v",
			second.DScenarios(), ref.DScenarios())
	}
	if second.States() != first.States() {
		t.Errorf("resumed sharded run states = %d, first run has %d",
			second.States(), first.States())
	}
}

// TestShardableNodesValidation: CustomScenario rejects shardable-node
// lists that would make sharded coverage unsound or are plainly wrong.
func TestShardableNodesValidation(t *testing.T) {
	b := sde.NewProgramBuilder()
	boot := b.Func("boot")
	boot.MovI(sde.R1, 1)
	boot.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	base := sde.CustomConfig{
		Topology:     sde.Line(2),
		Program:      prog,
		Algorithm:    sde.SDS,
		HorizonTicks: 10,
	}

	cfg := base
	cfg.ShardableNodes = nil
	if _, err := sde.CustomScenario("ok", cfg); err != nil {
		t.Errorf("empty ShardableNodes rejected: %v", err)
	}

	cfg = base
	cfg.ShardableNodes = []int{-1}
	if _, err := sde.CustomScenario("neg", cfg); err == nil {
		t.Error("negative shardable node accepted")
	}

	cfg = base
	cfg.ShardableNodes = []int{2}
	if _, err := sde.CustomScenario("oob", cfg); err == nil {
		t.Error("shardable node beyond the topology accepted")
	}

	cfg = base
	cfg.Failures = sde.FailurePlan{DropFirst: map[int]bool{0: true}}
	cfg.ShardableNodes = []int{0, 0}
	if _, err := sde.CustomScenario("dup", cfg); err == nil {
		t.Error("duplicate shardable node accepted")
	}

	cfg = base
	cfg.ShardableNodes = []int{0}
	if _, err := sde.CustomScenario("unarmed", cfg); err == nil {
		t.Error("shardable node without an armed DropFirst accepted")
	}

	cfg = base
	cfg.Failures = sde.FailurePlan{DropFirst: map[int]bool{0: true, 1: true}}
	cfg.ShardableNodes = []int{0, 1}
	if _, err := sde.CustomScenario("ok2", cfg); err != nil {
		t.Errorf("valid ShardableNodes rejected: %v", err)
	}
}
