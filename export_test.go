package sde_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"testing"

	"sde"
)

func TestReportJSON(t *testing.T) {
	s, err := sde.LineCollectScenario(sde.LineCollectOptions{
		K:         3,
		Algorithm: sde.SDS,
		Packets:   2,
		Failures: sde.FailurePlan{
			DropFirst:      map[int]bool{1: true},
			DuplicateFirst: map[int]bool{0: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, 4); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded sde.ReportJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if decoded.Algorithm != "SDS" {
		t.Errorf("algorithm = %q", decoded.Algorithm)
	}
	if decoded.States != report.States() {
		t.Errorf("states = %d, want %d", decoded.States, report.States())
	}
	if decoded.DScenarios != report.DScenarios().String() {
		t.Errorf("dscenarios = %q", decoded.DScenarios)
	}
	if decoded.Duplicates != 0 {
		t.Errorf("SDS duplicates = %d", decoded.Duplicates)
	}
	if len(decoded.Violations) == 0 {
		t.Error("violations missing from JSON (duplication bug expected)")
	}
	if len(decoded.TestCases) != 4 {
		t.Errorf("test cases = %d, want 4", len(decoded.TestCases))
	}
	for _, tc := range decoded.TestCases {
		if len(tc.Inputs) == 0 {
			t.Errorf("test case %d has no inputs", tc.Index)
		}
	}
}

func TestRunicastScenarioPublicAPI(t *testing.T) {
	s, err := sde.RunicastScenario(sde.RunicastOptions{
		K:         2,
		Algorithm: sde.SDS,
		Packets:   2,
		Failures:  sde.FailurePlan{DropFirst: map[int]bool{0: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	// The protocol heals the drop: no violations in any branch.
	if n := len(report.Violations()); n != 0 {
		t.Errorf("violations = %d, want 0 (retransmission heals the drop)", n)
	}
	if report.DScenarios().Int64() != 2 {
		t.Errorf("dscenarios = %v, want 2", report.DScenarios())
	}
	if _, err := sde.RunicastScenario(sde.RunicastOptions{K: 1}); err == nil {
		t.Error("K=1 accepted")
	}
}

// TestWriteCSVRoundTrip parses the emitted CSV back and checks the header
// and the optimizer columns (queries_sliced, gates_elided) survive the
// trip — the schema the shard aggregator and external plotters rely on.
func TestWriteCSVRoundTrip(t *testing.T) {
	s, err := sde.LineCollectScenario(sde.LineCollectOptions{
		K:         3,
		Algorithm: sde.SDS,
		Packets:   2,
		Failures:  sde.FailurePlan{DropFirst: map[int]bool{0: true, 1: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s.WithSampling(1))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse emitted CSV: %v", err)
	}
	wantHeader := []string{"wall_ms", "virtual_time", "states", "groups", "mem_bytes",
		"instructions", "solver_queries", "queries_sliced", "gates_elided",
		"fast_blocks", "slow_blocks", "folded_instrs",
		"merged_states", "merge_candidates", "merge_rejects",
		"reduce_checks", "reduce_pins"}
	if len(rows) == 0 {
		t.Fatal("no rows emitted")
	}
	for i, col := range wantHeader {
		if rows[0][i] != col {
			t.Fatalf("header[%d] = %q, want %q (full header %v)", i, rows[0][i], col, rows[0])
		}
	}
	samples := report.Samples()
	if len(rows)-1 != len(samples) {
		t.Fatalf("%d data rows, want %d samples", len(rows)-1, len(samples))
	}
	for i, sm := range samples {
		row := rows[i+1]
		if len(row) != len(wantHeader) {
			t.Fatalf("row %d has %d columns, want %d", i, len(row), len(wantHeader))
		}
		for col, want := range map[int]int64{
			2:  int64(sm.States),
			6:  sm.SolverQueries,
			7:  sm.QueriesSliced,
			8:  sm.GatesElided,
			9:  int64(sm.FastBlocks),
			10: int64(sm.SlowBlocks),
			11: int64(sm.FoldedInstrs),
			12: int64(sm.MergedStates),
			13: int64(sm.MergeCandidates),
			14: int64(sm.MergeRejects),
			15: int64(sm.ReduceChecks),
			16: int64(sm.ReducePins),
		} {
			got, err := strconv.ParseInt(row[col], 10, 64)
			if err != nil {
				t.Fatalf("row %d col %d %q: %v", i, col, row[col], err)
			}
			if got != want {
				t.Errorf("row %d %s = %d, want %d", i, wantHeader[col], got, want)
			}
		}
	}
}
