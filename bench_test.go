package sde_test

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§IV), plus the §III-E worst-case analysis and the §IV-C
// limitation and explosion workloads. Each benchmark reports, next to the
// usual ns/op, the quantities the paper tabulates: final execution states,
// modeled RAM, and represented dscenarios.
//
// Scale note: the workloads use the calibrated laptop-scale defaults of
// DefaultEvalOptions (3 packets instead of the paper's 10; COB state caps
// standing in for the paper's 40 GB memory cap). Absolute numbers differ
// from the paper's Xeon/KLEE setup by construction; the reproduced shape —
// SDS < COW < COB on states, RAM, and runtime, with COB aborting on the
// big scenarios — is asserted by the test suite and visible in the
// reported metrics. cmd/sde-bench runs the same sweeps with tunable scale.

import (
	"fmt"
	"math/big"
	"testing"
	"time"

	"sde"
	"sde/internal/trace"
)

// reportRow attaches the paper's Table I columns to a benchmark.
func reportRow(b *testing.B, rep *sde.Report) {
	b.Helper()
	b.ReportMetric(float64(rep.States()), "states")
	b.ReportMetric(float64(rep.MemBytes())/(1<<20), "modelMiB")
	f, _ := new(big.Float).SetInt(rep.DScenarios()).Float64()
	b.ReportMetric(f, "dscenarios")
}

// benchGrid runs one (dim, algorithm) grid scenario per iteration.
func benchGrid(b *testing.B, dim int, algo sde.Algorithm) {
	opts := sde.DefaultEvalOptions(dim)
	scenario, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:          dim,
		Algorithm:    algo,
		Packets:      opts.Packets,
		DropNodes:    opts.DropNodes,
		MaxDropNodes: opts.MaxDropNodes,
		Caps:         opts.Caps[algo],
	})
	if err != nil {
		b.Fatal(err)
	}
	var rep *sde.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = sde.RunScenario(scenario)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportRow(b, rep)
	if aborted, reason := rep.Aborted(); aborted {
		b.Logf("%v on %d nodes aborted (as in the paper's Table I): %s",
			algo, dim*dim, reason)
	}
}

// BenchmarkTable1 regenerates Table I: the 100-node (10x10) grid scenario
// with symbolic packet drops, one row per state mapping algorithm. COB
// hits its resource cap and is reported aborted, as in the paper.
func BenchmarkTable1(b *testing.B) {
	for _, algo := range sde.Algorithms {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) { benchGrid(b, 10, algo) })
	}
}

// BenchmarkFig10 regenerates the Figure 10 runs. Each (size, algorithm)
// run produces both the state-growth and the memory-growth series of the
// corresponding sub-figure pair: 25 nodes -> 10(a,b), 49 -> 10(c,d),
// 100 -> 10(e,f). The time series themselves are printed by cmd/sde-bench;
// here the end points are reported as metrics.
func BenchmarkFig10(b *testing.B) {
	for _, dim := range []int{5, 7, 10} {
		dim := dim
		b.Run(fmt.Sprintf("%dnodes", dim*dim), func(b *testing.B) {
			for _, algo := range sde.Algorithms {
				algo := algo
				b.Run(algo.String(), func(b *testing.B) { benchGrid(b, dim, algo) })
			}
		})
	}
}

// BenchmarkFigure1Explore regenerates Figure 1: regular symbolic
// execution of the four-path program with one test case per path.
func BenchmarkFigure1Explore(b *testing.B) {
	mk := func() *sde.Program {
		pb := sde.NewProgramBuilder()
		f := pb.Func("main")
		f.Sym(sde.R1, "x", 32)
		f.EqI(sde.R2, sde.R1, 0)
		f.BrNZ(sde.R2, "path1")
		f.UltI(sde.R2, sde.R1, 50)
		f.BrZ(sde.R2, "path4")
		f.UltI(sde.R2, sde.R1, 11)
		f.BrNZ(sde.R2, "path3")
		f.MovI(sde.R3, 2)
		f.Ret()
		f.Label("path1")
		f.MovI(sde.R3, 1)
		f.Ret()
		f.Label("path3")
		f.MovI(sde.R3, 3)
		f.Ret()
		f.Label("path4")
		f.MovI(sde.R3, 4)
		f.Ret()
		prog, err := pb.Build()
		if err != nil {
			b.Fatal(err)
		}
		return prog
	}
	prog := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sde.Explore(prog, "main", sde.ExploreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Paths) != 4 {
			b.Fatalf("paths = %d, want 4", len(rep.Paths))
		}
	}
}

// BenchmarkWorstCaseCOB regenerates the §III-E worst-case analysis: the
// all-branches program on k nodes to depth u costs COB Theta(k * 2^(k*u))
// states; the reported metric must match the closed form exactly.
func BenchmarkWorstCaseCOB(b *testing.B) {
	for _, tc := range []struct{ k, u int }{{2, 2}, {2, 3}, {3, 2}} {
		tc := tc
		b.Run(fmt.Sprintf("k%d_u%d", tc.k, tc.u), func(b *testing.B) {
			prog := worstCaseProgram(b, uint32(tc.u))
			scenario, err := sde.CustomScenario("worst case", sde.CustomConfig{
				Topology:     sde.Line(tc.k),
				Program:      prog,
				Algorithm:    sde.COB,
				HorizonTicks: uint64(tc.u) + 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			var rep *sde.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err = sde.RunScenario(scenario)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			want := tc.k * (1 << uint(tc.k*tc.u))
			if rep.States() != want {
				b.Fatalf("states = %d, want k*2^(k*u) = %d", rep.States(), want)
			}
			reportRow(b, rep)
		})
	}
}

// BenchmarkWorstCaseSDS is the ablation partner of BenchmarkWorstCaseCOB:
// the same worst-case input under SDS needs only k * 2^u states (§III-B:
// without communication a single dstate suffices).
func BenchmarkWorstCaseSDS(b *testing.B) {
	const k, u = 3, 3
	prog := worstCaseProgram(b, u)
	scenario, err := sde.CustomScenario("worst case", sde.CustomConfig{
		Topology:     sde.Line(k),
		Program:      prog,
		Algorithm:    sde.SDS,
		HorizonTicks: u + 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	var rep *sde.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = sde.RunScenario(scenario)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if want := k * (1 << u); rep.States() != want {
		b.Fatalf("states = %d, want k*2^u = %d", rep.States(), want)
	}
	reportRow(b, rep)
}

// BenchmarkMeshFlood regenerates the §IV-C limitation discussion: a
// full-mesh flooding workload in which the bystander-saving structure of
// COW/SDS collapses and all algorithms hold comparable state counts.
func BenchmarkMeshFlood(b *testing.B) {
	for _, algo := range sde.Algorithms {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			scenario, err := sde.FloodScenario(sde.FloodOptions{
				K:         5,
				Algorithm: algo,
				Packets:   1,
				DropAll:   true,
				Caps:      sde.Caps{MaxStates: 500000},
			})
			if err != nil {
				b.Fatal(err)
			}
			var rep *sde.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err = sde.RunScenario(scenario)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportRow(b, rep)
		})
	}
}

// BenchmarkSymbolicData measures the §II-A symbolic-packet-header
// workload: a symbolic sensor reading propagating through a line with
// constraint inheritance and implied-branch pruning at every hop.
func BenchmarkSymbolicData(b *testing.B) {
	scenario, err := sde.ThresholdScenario(sde.ThresholdOptions{K: 6})
	if err != nil {
		b.Fatal(err)
	}
	var rep *sde.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = sde.RunScenario(scenario)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportRow(b, rep)
}

// BenchmarkExplode regenerates the §IV-C test-case generation cost: the
// compact SDS representation is exploded into dscenarios and one concrete
// test case is solved per dscenario, incrementally.
func BenchmarkExplode(b *testing.B) {
	scenario, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:       5,
		Algorithm: sde.SDS,
		Packets:   3,
		DropNodes: sde.DropRoute,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := sde.RunScenario(scenario)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		n := 0
		err := rep.StreamTestCases(0, func(tc trace.TestCase) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		total = n
	}
	b.StopTimer()
	b.ReportMetric(float64(total), "testcases")
	if int64(total) != rep.DScenarios().Int64() {
		b.Fatalf("generated %d test cases for %v dscenarios", total, rep.DScenarios())
	}
}

// worstCaseProgram builds the §III-E all-branches input: one fresh
// symbolic branch per node per level.
func worstCaseProgram(b *testing.B, u uint32) *sde.Program {
	b.Helper()
	pb := sde.NewProgramBuilder()
	boot := pb.Func("boot")
	boot.MovI(sde.R1, 1)
	boot.Timer("step", sde.R1, sde.R0)
	boot.Ret()
	step := pb.Func("step")
	step.Sym(sde.R5, "flip", 1)
	step.BrNZ(sde.R5, "cont")
	step.Label("cont")
	step.MovI(sde.R3, 0)
	step.Load(sde.R4, sde.R3, 0x30)
	step.AddI(sde.R4, sde.R4, 1)
	step.Store(sde.R3, 0x30, sde.R4)
	step.UltI(sde.R6, sde.R4, u)
	step.BrZ(sde.R6, "stop")
	step.MovI(sde.R1, 1)
	step.Timer("step", sde.R1, sde.R0)
	step.Label("stop")
	step.Ret()
	prog, err := pb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// benchElapsed guards against pathological regressions in the harness
// itself: the laptop-scale Table I sweep must stay within minutes.
func TestBenchScaleSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	start := time.Now()
	opts := sde.DefaultEvalOptions(5)
	if _, err := sde.RunGridEvaluation(5, opts); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("25-node sweep took %v; the calibrated scale should stay in seconds", elapsed)
	}
}

// BenchmarkShardedSkewed compares static uniform sharding against the
// adaptive work-stealing scheduler on a skewed workload at equal worker
// count. The dscenario space is dominated by the all-delivered corner
// (every reception forks a chain of symbolic branches; every drop
// silences a receiver), so a uniform 2^3 pre-split wastes seven cheap
// shards' worth of engine setup and re-execution while one shard does
// nearly all the work. The adaptive run starts from a single coarse
// shard and only subdivides what the pool observes to be heavy, with
// the cross-shard solver cache absorbing the re-executed prefix work —
// lower makespan from strictly less total work.
func BenchmarkShardedSkewed(b *testing.B) {
	const workers = 4
	scenario := skewedScenario(b, 4, 6, sde.SDS)
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  sde.ShardConfig
	}{
		{"static", sde.ShardConfig{ShardBits: 3, Workers: workers}},
		{"adaptive", sde.ShardConfig{
			Workers:           workers,
			MaxSplitBits:      3,
			SplitThreshold:    150,
			SharedSolverCache: true,
		}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var rep *sde.ShardedReport
			for i := 0; i < b.N; i++ {
				rep, err = sde.RunScenarioShardedWith(scenario, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Both schedules must explore exactly the unsharded space.
			if rep.DScenarios().Cmp(ref.DScenarios()) != 0 {
				b.Fatalf("dscenarios = %v, want %v", rep.DScenarios(), ref.DScenarios())
			}
			b.ReportMetric(float64(rep.Sched.Elapsed.Microseconds())/float64(b.N), "makespan-us")
			b.ReportMetric(float64(rep.Sched.Shards), "shards")
			b.ReportMetric(float64(rep.Sched.Splits), "splits")
			b.ReportMetric(float64(rep.States()), "states")
			b.ReportMetric(100*rep.Sched.SharedHitRate(), "shared-hit-%")
		})
	}
}
