package sde

import (
	"math/big"
	"strings"
	"testing"
	"time"

	"sde/internal/sim"
	"sde/internal/vm"
)

// fakeShardedReport fabricates a sharded report from raw results, so the
// aggregation methods can be unit-tested without running engines.
func fakeShardedReport(results ...*sim.Result) *ShardedReport {
	r := &ShardedReport{}
	for i, res := range results {
		r.Shards = append(r.Shards, ShardReport{
			Shard:  i,
			Report: &Report{res: res},
		})
	}
	return r
}

func TestShardedReportWallAggregation(t *testing.T) {
	r := fakeShardedReport(
		&sim.Result{Wall: 30 * time.Millisecond},
		&sim.Result{Wall: 90 * time.Millisecond},
		&sim.Result{Wall: 10 * time.Millisecond},
	)
	if got := r.Wall(); got != 90*time.Millisecond {
		t.Errorf("Wall() = %v, want the longest shard wall 90ms", got)
	}
	if got := fakeShardedReport().Wall(); got != 0 {
		t.Errorf("empty report Wall() = %v, want 0", got)
	}
}

func TestShardedReportAbortedAggregation(t *testing.T) {
	clean := fakeShardedReport(&sim.Result{}, &sim.Result{})
	if aborted, reason := clean.Aborted(); aborted || reason != "" {
		t.Errorf("clean report Aborted() = %v %q", aborted, reason)
	}
	mixed := fakeShardedReport(
		&sim.Result{},
		&sim.Result{Aborted: true, AbortReason: "state cap exceeded"},
	)
	aborted, reason := mixed.Aborted()
	if !aborted {
		t.Fatal("aborted shard not surfaced")
	}
	if !strings.Contains(reason, "shard 1") || !strings.Contains(reason, "state cap exceeded") {
		t.Errorf("abort reason %q names neither the shard nor the cause", reason)
	}
}

func TestShardedReportViolationsAggregation(t *testing.T) {
	v0 := &vm.Violation{Node: 0, Msg: "a"}
	v1 := &vm.Violation{Node: 1, Msg: "b"}
	v2 := &vm.Violation{Node: 2, Msg: "c"}
	r := fakeShardedReport(
		&sim.Result{Violations: []*vm.Violation{v0}},
		&sim.Result{},
		&sim.Result{Violations: []*vm.Violation{v1, v2}},
	)
	got := r.Violations()
	if len(got) != 3 {
		t.Fatalf("Violations() returned %d, want 3", len(got))
	}
	// Shard order is preserved.
	if got[0] != v0 || got[1] != v1 || got[2] != v2 {
		t.Error("violations not aggregated in shard order")
	}
}

func TestShardedReportStatesAndDScenarios(t *testing.T) {
	r := fakeShardedReport(
		&sim.Result{FinalStates: 4, DScenarios: big.NewInt(8)},
		&sim.Result{FinalStates: 6, DScenarios: big.NewInt(24)},
	)
	if got := r.States(); got != 10 {
		t.Errorf("States() = %d, want 10", got)
	}
	if got := r.DScenarios(); got.Cmp(big.NewInt(32)) != 0 {
		t.Errorf("DScenarios() = %v, want 32", got)
	}
}

// TestShardedErrorsJoined: a sharded run must report every failing
// shard's error, not just the first one.
func TestShardedErrorsJoined(t *testing.T) {
	// An empty config fails engine construction in every shard.
	broken := Scenario{shardable: []int{1, 2}}
	_, err := RunScenarioShardedWith(broken, ShardConfig{ShardBits: 1, Workers: 2})
	if err == nil {
		t.Fatal("broken scenario ran without error")
	}
	msg := err.Error()
	for _, label := range []string{"shard 0/1", "shard 1/1"} {
		if !strings.Contains(msg, label) {
			t.Errorf("joined error %q is missing %s", msg, label)
		}
	}
}
