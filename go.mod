module sde

go 1.22
