// Package sde is a library for scalable symbolic execution of distributed
// systems, reproducing "Scalable Symbolic Execution of Distributed
// Systems" (Sasnauskas et al., ICDCS 2011).
//
// The library symbolically executes a network of k nodes running
// unmodified programs written against a small 32-bit instruction set (see
// NewProgramBuilder). Execution states fork at symbolic branches and at
// injected network failures; the state mapping algorithms of the paper —
// Copy On Branch (COB), Copy On Write (COW), and Super DStates (SDS) —
// decide which states of a destination node receive each transmitted
// packet while keeping the set of live states minimal.
//
// Typical use:
//
//	scenario, _ := sde.GridCollectScenario(sde.GridCollectOptions{
//		Dim:       5,
//		Algorithm: sde.SDS,
//		Packets:   10,
//	})
//	report, _ := sde.RunScenario(scenario)
//	fmt.Println(report.Summary())
//	cases, _ := report.TestCases(10)
//
// Single programs can be explored KLEE-style with Explore, and any
// violation's concrete witness can be replayed deterministically with
// Report.ReplayViolation.
package sde

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
	"time"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/metrics"
	"sde/internal/sim"
	"sde/internal/snap"
	"sde/internal/solver"
	"sde/internal/trace"
	"sde/internal/vm"
)

// Algorithm selects a state mapping algorithm.
type Algorithm = core.Algorithm

// The three state mapping algorithms of the paper's §III.
const (
	COB = core.COBAlgorithm
	COW = core.COWAlgorithm
	SDS = core.SDSAlgorithm
)

// Algorithms lists all state mapping algorithms in the paper's order.
var Algorithms = []Algorithm{COB, COW, SDS}

// Topology describes node connectivity; construct with Grid, Line, or
// FullMesh.
type Topology = sim.Topology

// Grid returns a w x h lattice with 4-way radio connectivity (the paper's
// evaluation topology). Node 0 is the top-left corner, node w*h-1 the
// bottom-right corner.
func Grid(w, h int) *sim.Grid { return sim.NewGrid(w, h) }

// Line returns a k-node chain.
func Line(k int) *sim.Line { return sim.NewLine(k) }

// FullMesh returns a k-node full mesh (every pair connected).
func FullMesh(k int) *sim.FullMesh { return sim.NewFullMesh(k) }

// Env is a concrete assignment of symbolic inputs (a test case).
type Env = expr.Env

// Violation is a failed assertion with its concrete witness.
type Violation = vm.Violation

// Caps bound a run's resources; exceeding one aborts the run, mirroring
// the paper's aborted COB measurement.
type Caps = sim.Caps

// FailurePlan selects the symbolic network failures per node.
type FailurePlan = sim.FailurePlan

// NodeSet builds a FailurePlan membership map from a node list.
func NodeSet(nodes []int) map[int]bool { return sim.NodeSet(nodes) }

// Sample is one metrics measurement (states, modeled memory, time).
type Sample = metrics.Sample

// SchedStats is the adaptive shard scheduler's telemetry: worker
// utilisation, steal/split counts, and cross-shard solver-cache reuse.
// See ShardedReport.Sched.
type SchedStats = metrics.SchedStats

// SpecStats is the speculative-fork solver pipeline's telemetry:
// speculations submitted, complement elisions, rewinds, and barrier wait
// time. See Report.SpecStats.
type SpecStats = metrics.SpecStats

// VMStats is the compiled-IR fast path's telemetry: basic blocks executed
// on the concrete straight-line fast path versus interpreted, and
// instructions answered by load-time constant folding. See Report.VMStats.
type VMStats = metrics.VMStats

// MergeStats is the state-merging subsystem's telemetry: fusions
// accepted, candidates considered, cost-model rejections, rep splits, and
// the peak number of states hidden inside merged representatives. See
// Report.MergeStats.
type MergeStats = metrics.MergeStats

// ReduceStats is the symmetry/partial-order reduction telemetry: the
// effective automorphism-group order, decisions pinned instead of forked,
// independence commutes, and violations synthesized by witness expansion.
// See Report.ReduceStats.
type ReduceStats = metrics.ReduceStats

// SymmetrySpec declares a scenario's per-node asymmetries (role labels,
// static routes) so symmetry reduction can be applied to node-aware
// programs: the topology's automorphism group is stabilized by the
// declared labels and routing before it prunes anything. Without a spec,
// reduction applies the full group only to node-uniform programs (no
// node-id reads, no per-node initial memory) and is otherwise inert.
type SymmetrySpec = sim.ReduceSymmetry

// SolverOptions tunes a run's constraint solver: ablation switches for
// each pipeline layer (caches, model pool, fast path, partitioning,
// incremental solving, subsumption, and the query-optimizer stages —
// slicing, rewriting, concretization) and the CDCL conflict budget. The
// zero value enables every optimisation.
type SolverOptions = solver.Options

// SolverStats is a snapshot of a run's constraint-solver activity
// counters. See Report.SolverStats.
type SolverStats = solver.Stats

// Scenario is a fully specified SDE run. Build one with a constructor
// (GridCollectScenario, FloodScenario, CustomScenario) and pass it to
// RunScenario.
type Scenario struct {
	cfg  sim.Config
	desc string
	// shardable lists armed drop nodes whose failure decision is
	// guaranteed to materialise in every execution (radio neighbours of
	// the traffic source: they receive the source's unconditional first
	// broadcast). Only such decisions partition the dscenario space
	// soundly; see RunScenarioSharded.
	shardable []int
}

// Description returns a human-readable summary of the scenario.
func (s Scenario) Description() string { return s.desc }

// Algorithm returns the scenario's state mapping algorithm.
func (s Scenario) Algorithm() Algorithm { return s.cfg.Algorithm }

// Program returns the node software the scenario runs.
func (s Scenario) Program() *Program { return s.cfg.Prog }

// ShardableSites returns the program branches the load-time compiler's
// static taint pass found to be data-dependent on symbolic input —
// candidate shard points beyond the drop decisions the scenario's
// shardable-node list declares. A scenario whose program has such sites
// but whose MaxShardBits is zero cannot be partitioned at all; sde-run
// warns in that case.
func (s Scenario) ShardableSites() []ShardSite { return s.cfg.Prog.ShardableSites() }

// ShardabilityNote returns a human-readable heads-up when the program has
// symbolic-input-dependent branches (candidate shard points) but the
// scenario declares no shardable nodes — such a run cannot be partitioned
// by sharded or distributed exploration at all. It returns "" when the
// scenario is shardable or the program has no such sites. Every scenario
// entry point surfaces it: sde-run prints it for flag-driven runs and the
// exploration service logs it at job submission, so ScenarioSpec-driven
// runs get the same warning.
func (s Scenario) ShardabilityNote() string {
	sites := s.ShardableSites()
	if len(sites) == 0 || s.MaxShardBits() > 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b,
		"%d program branch(es) depend on symbolic input but the scenario declares no shardable nodes; sharded exploration cannot partition this space",
		len(sites))
	for i, site := range sites {
		if i == 4 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(sites)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", site)
	}
	return b.String()
}

// WithAlgorithm returns a copy of the scenario using a different state
// mapping algorithm — the way evaluation sweeps compare COB, COW, and SDS
// on identical workloads.
func (s Scenario) WithAlgorithm(a Algorithm) Scenario {
	s.cfg.Algorithm = a
	return s
}

// WithCaps returns a copy of the scenario with resource caps applied.
func (s Scenario) WithCaps(c Caps) Scenario {
	s.cfg.Caps = c
	return s
}

// WithSampling returns a copy sampling metrics every n events.
func (s Scenario) WithSampling(n int) Scenario {
	s.cfg.SampleEvery = n
	return s
}

// WithSolverOptions returns a copy of the scenario whose engine solver
// uses the given tuning — the hook ablation sweeps use to quantify each
// solver-pipeline layer's contribution.
func (s Scenario) WithSolverOptions(o SolverOptions) Scenario {
	s.cfg.Solver = o
	return s
}

// WithoutQueryOptimizer returns a copy of the scenario with all three
// query-optimizer stages (independence slicing, algebraic rewriting,
// implied-value concretization) switched off. Optimized and unoptimized
// runs produce identical test-case sets and state fingerprints, so this
// switch — and the per-stage SolverOptions flags for finer bisection —
// is the LAST triage step when a soundness bug is suspected, after
// WithoutCompiledIR, WithoutMerging, WithoutReduction, and
// WithoutSpeculation.
func (s Scenario) WithoutQueryOptimizer() Scenario {
	s.cfg.Solver.DisableSlicing = true
	s.cfg.Solver.DisableRewrite = true
	s.cfg.Solver.DisableConcretization = true
	return s
}

// WithSpeculation returns a copy of the scenario with the speculative-fork
// solver pipeline enabled and its worker-pool size set (0 = one worker per
// CPU). Speculation is on by default; use this to tune the pool.
func (s Scenario) WithSpeculation(workers int) Scenario {
	s.cfg.DisableSpeculation = false
	s.cfg.SpecWorkers = workers
	return s
}

// WithoutSpeculation returns a copy of the scenario that resolves every
// branch feasibility query synchronously, with no speculative execution.
// Speculative and synchronous runs produce bit-identical state
// fingerprints, dscenario sets, and test cases, so this switch is the
// FOURTH triage step when a soundness bug is suspected — after
// WithoutCompiledIR, WithoutMerging, and WithoutReduction, before
// WithoutQueryOptimizer.
func (s Scenario) WithoutSpeculation() Scenario {
	s.cfg.DisableSpeculation = true
	return s
}

// WithoutCompiledIR returns a copy of the scenario that executes every
// instruction through the per-instruction symbolic interpreter, with no
// basic-block fast path. Compiled and interpreted runs produce
// bit-identical state fingerprints, dscenario sets, and test cases, so
// this switch is the FIRST triage step when a soundness bug is suspected
// — before WithoutMerging, WithoutReduction, WithoutSpeculation, and
// WithoutQueryOptimizer, since the compiled path sits below all of them.
func (s Scenario) WithoutCompiledIR() Scenario {
	s.cfg.DisableCompiledIR = true
	return s
}

// WithMerging returns a copy of the scenario with ITE-based state merging
// enabled: at event boundaries, sibling states of a node whose memories
// and registers differ at a bounded number of locations fuse into one
// representative whose differing values become ite(pathΔ, v1, v2)
// expressions over a disjoined path condition. The representative
// executes shared events once and splits back into its exact members at
// the first divergent or observable point, so merged and unmerged runs
// produce bit-identical state fingerprints, dscenario sets, violations,
// and test cases — only the instruction count shrinks. Merging is off by
// default.
func (s Scenario) WithMerging() Scenario {
	s.cfg.EnableMerge = true
	return s
}

// WithoutMerging returns a copy of the scenario with state merging
// disabled (the default). Because merged and unmerged runs are
// bit-identical, this switch is the SECOND triage step when a soundness
// bug is suspected — after WithoutCompiledIR and before WithoutReduction,
// WithoutSpeculation, and WithoutQueryOptimizer, since merging sits above
// the compiled path but below the solver pipeline.
func (s Scenario) WithoutMerging() Scenario {
	s.cfg.EnableMerge = false
	return s
}

// WithReduction returns a copy of the scenario with symmetry and
// partial-order reduction enabled: the topology's automorphism group
// (stabilized by the scenario's declared SymmetrySpec, if any)
// canonicalizes failure-decision branches so only one representative of
// each symmetry orbit is explored, and an activation-independence check
// lets merged representatives commute past unrelated same-time
// activations. Reduction preserves the violation set — violations of
// pruned branches are synthesized back onto their concrete node ids at
// the end of the run, marked Synthesized — and one test case per orbit,
// but unlike merging it is NOT bit-identical: the explored state count,
// instruction count, and fingerprint population shrink. Reduction is off
// by default.
func (s Scenario) WithReduction() Scenario {
	s.cfg.EnableReduce = true
	return s
}

// WithoutReduction returns a copy of the scenario with symmetry reduction
// disabled (the default). Because reduction preserves the violation set
// but not bit-identity, this switch is the THIRD triage step when a
// soundness bug is suspected — after WithoutCompiledIR and WithoutMerging,
// before WithoutSpeculation and WithoutQueryOptimizer: if turning
// reduction off changes the VIOLATION SET, the reduction layer is the
// bug; state-count differences alone are expected and benign.
func (s Scenario) WithoutReduction() Scenario {
	s.cfg.EnableReduce = false
	return s
}

// WithCheckpoints returns a copy of the scenario that writes a durable
// snapshot of the exploration frontier into dir every `every` processed
// events (0 = the engine default) and once more on completion. A crashed
// run continues from the last snapshot via Resume.
func (s Scenario) WithCheckpoints(dir string, every int) Scenario {
	s.cfg.CheckpointDir = dir
	s.cfg.CheckpointEvery = every
	return s
}

// Report is the outcome of a scenario run.
type Report struct {
	res      *sim.Result
	scenario Scenario
}

// RunScenario executes the scenario to completion (or until a cap fires)
// and returns its report.
func RunScenario(s Scenario) (*Report, error) {
	eng, err := sim.NewEngine(s.cfg)
	if err != nil {
		return nil, fmt.Errorf("sde: %w", err)
	}
	res, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("sde: %w", err)
	}
	return &Report{res: res, scenario: s}, nil
}

// Checkpoint runs the scenario with periodic durable checkpoints written
// into dir: RunScenario with WithCheckpoints applied.
func Checkpoint(s Scenario, dir string) (*Report, error) {
	return RunScenario(s.WithCheckpoints(dir, s.cfg.CheckpointEvery))
}

// Resume continues the scenario from the checkpoint in dir — or starts it
// fresh (checkpointing into dir) when none has been written yet, so a
// crash-restart loop can call Resume unconditionally. The resumed run is
// bit-identical to an uninterrupted one: same state ids, same dscenarios,
// same fingerprints, same test cases. Report.Resumed distinguishes the
// two outcomes. The scenario must match the interrupted run (program,
// topology, algorithm, failures); caps and solver tuning may differ.
func Resume(s Scenario, dir string) (*Report, error) {
	return runOrResume(s, dir)
}

func runOrResume(s Scenario, dir string) (*Report, error) {
	s = s.WithCheckpoints(dir, s.cfg.CheckpointEvery)
	data, err := snap.LoadBytes(dir)
	if errors.Is(err, snap.ErrNoCheckpoint) {
		return RunScenario(s)
	}
	if err != nil {
		return nil, fmt.Errorf("sde: %w", err)
	}
	eng, err := sim.ResumeEngine(s.cfg, data)
	if err != nil {
		return nil, fmt.Errorf("sde: %w", err)
	}
	res, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("sde: %w", err)
	}
	return &Report{res: res, scenario: s}, nil
}

// Aborted reports whether the run hit a resource cap, and why.
func (r *Report) Aborted() (bool, string) { return r.res.Aborted, r.res.AbortReason }

// Resumed reports whether the run continued from a durable checkpoint
// (see Resume). A resumed run's Wall includes the interrupted run's time.
func (r *Report) Resumed() bool { return r.res.Resumed }

// Stopped reports whether the run was cut short by a progress hook —
// the adaptive shard scheduler stops straggling shards this way before
// re-partitioning them. A stopped run's results cover only part of its
// space and are discarded by the scheduler.
func (r *Report) Stopped() bool { return r.res.Stopped }

// Suspended reports whether the run paused at a depth horizon (an event
// budget) with live work remaining. A suspended run's frontier snapshot
// is the continuation payload the shard schedulers fan out as new work
// items; its report covers only the events before the horizon.
func (r *Report) Suspended() bool { return r.res.Suspended }

// Wall returns the wall-clock duration of the run.
func (r *Report) Wall() time.Duration { return r.res.Wall }

// States returns the final number of execution states.
func (r *Report) States() int { return r.res.FinalStates }

// Groups returns the number of dscenarios (COB) or dstates (COW/SDS).
func (r *Report) Groups() int { return r.res.Groups }

// DScenarios returns how many concrete network scenarios the final state
// population represents.
func (r *Report) DScenarios() *big.Int { return r.res.DScenarios }

// MemBytes returns the final modeled memory footprint.
func (r *Report) MemBytes() int64 { return r.res.FinalMem }

// PeakMemBytes returns the peak modeled memory footprint.
func (r *Report) PeakMemBytes() int64 { return r.res.PeakMem }

// Instructions returns the total number of instructions executed.
func (r *Report) Instructions() uint64 { return r.res.Instructions }

// Violations returns the assertion failures found, each with a concrete
// witness test case.
func (r *Report) Violations() []*Violation { return r.res.Violations }

// Samples returns the metrics time series (state and memory growth).
func (r *Report) Samples() []Sample { return r.res.Series.Samples() }

// SolverStats returns the run's constraint-solver activity counters
// (queries, cache and subsumption hits, incremental solves, conflicts).
func (r *Report) SolverStats() SolverStats { return r.res.SolverStats }

// SpecStats returns the run's speculative-fork pipeline counters (all
// zero when speculation is disabled or the run was a replay).
func (r *Report) SpecStats() SpecStats { return r.res.Spec }

// VMStats returns the run's compiled-IR fast-path counters (all zero
// when compiled execution is disabled).
func (r *Report) VMStats() VMStats { return r.res.VM }

// ReduceStats returns the run's symmetry/partial-order reduction
// counters (all zero when reduction was disabled).
func (r *Report) ReduceStats() ReduceStats { return r.res.Reduce }

// MergeStats returns the run's state-merging counters (all zero when
// merging is disabled or the run was a replay).
func (r *Report) MergeStats() MergeStats { return r.res.Merge }

// TestCases explodes up to limit dscenarios (limit <= 0 = all) and solves
// one concrete test case per dscenario (§IV-C).
func (r *Report) TestCases(limit int) ([]trace.TestCase, error) {
	return trace.FromResult(r.res, limit)
}

// StreamTestCases generates test cases incrementally without retaining
// them, bounding memory on large runs (§VI future work).
func (r *Report) StreamTestCases(limit int, fn func(tc trace.TestCase) error) error {
	return trace.Stream(r.res.Mapper, r.res.Ctx, limit, fn)
}

// Replay re-executes the scenario concretely under the given inputs.
func (r *Report) Replay(inputs Env) (*Report, error) {
	res, err := trace.Replay(r.scenario.cfg, inputs)
	if err != nil {
		return nil, fmt.Errorf("sde: %w", err)
	}
	return &Report{res: res, scenario: r.scenario}, nil
}

// ReplayViolation replays a violation's witness and reports whether the
// assertion fires again.
func (r *Report) ReplayViolation(v *Violation) (bool, *Report, error) {
	ok, res, err := trace.ReplayViolation(r.scenario.cfg, v)
	if err != nil {
		return false, nil, fmt.Errorf("sde: %w", err)
	}
	return ok, &Report{res: res, scenario: r.scenario}, nil
}

// MinimizeViolation shrinks a violation's witness to the injected
// failures that are actually needed to reproduce it (one-minimal delta
// debugging over concrete replays). It returns the minimised test case
// and the names of the load-bearing failure decisions.
func (r *Report) MinimizeViolation(v *Violation) (Env, []string, error) {
	minimal, needed, err := trace.MinimizeWitness(r.scenario.cfg, v)
	if err != nil {
		return nil, nil, fmt.Errorf("sde: %w", err)
	}
	return minimal, needed, nil
}

// NodeStates visits the final execution states grouped by node id.
func (r *Report) NodeStates() map[int][]*vm.State {
	out := make(map[int][]*vm.State)
	r.res.Mapper.ForEachState(func(s *vm.State) {
		out[s.NodeID()] = append(out[s.NodeID()], s)
	})
	return out
}

// Summary renders a one-line Table-I-style row: runtime, states, memory.
func (r *Report) Summary() string {
	status := ""
	if r.res.Aborted {
		status = " (aborted: " + r.res.AbortReason + ")"
	}
	return fmt.Sprintf("%-4s %-10s runtime=%-12s states=%-8d mem=%-10s dscenarios=%s%s",
		r.res.Algorithm, r.res.Topology, r.res.Wall.Round(time.Millisecond),
		r.res.FinalStates, metrics.FormatBytes(r.res.FinalMem),
		r.res.DScenarios.String(), status)
}

// Result exposes the underlying engine result for advanced consumers
// (benchmark harnesses, custom metrics processing).
func (r *Report) Result() *sim.Result { return r.res }

// CustomScenario assembles a scenario from raw parts, for workloads beyond
// the built-in ones. Program must define a "boot" function; "on_recv" is
// invoked for receptions when present.
func CustomScenario(desc string, cfg CustomConfig) (Scenario, error) {
	if cfg.Topology == nil {
		return Scenario{}, fmt.Errorf("sde: custom scenario needs a topology")
	}
	if cfg.Program == nil {
		return Scenario{}, fmt.Errorf("sde: custom scenario needs a program")
	}
	seen := make(map[int]bool, len(cfg.ShardableNodes))
	for _, n := range cfg.ShardableNodes {
		if n < 0 || n >= cfg.Topology.K() {
			return Scenario{}, fmt.Errorf(
				"sde: shardable node %d outside topology (k=%d)", n, cfg.Topology.K())
		}
		if seen[n] {
			return Scenario{}, fmt.Errorf("sde: shardable node %d listed twice", n)
		}
		seen[n] = true
		if !cfg.Failures.DropFirst[n] {
			return Scenario{}, fmt.Errorf(
				"sde: shardable node %d has no DropFirst failure armed", n)
		}
	}
	return Scenario{
		desc:      desc,
		shardable: append([]int(nil), cfg.ShardableNodes...),
		cfg: sim.Config{
			Topo:      cfg.Topology,
			Prog:      cfg.Program,
			Algorithm: cfg.Algorithm,
			Horizon:   cfg.HorizonTicks,
			Failures:  cfg.Failures,
			NodeInit:  cfg.NodeInit,
			Caps:      cfg.Caps,
			Symmetry:  cfg.Symmetry,
		},
	}, nil
}

// CustomConfig parameterises CustomScenario.
type CustomConfig struct {
	Topology     Topology
	Program      *Program
	Algorithm    Algorithm
	HorizonTicks uint64
	Failures     FailurePlan
	NodeInit     func(node int, s *vm.State, eb *expr.Builder)
	Caps         Caps

	// ShardableNodes declares which armed DropFirst nodes' drop
	// decisions may be pinned for sharding (see RunScenarioSharded).
	// The caller vouches that each listed node's first reception
	// materialises in every execution — e.g. it is a radio neighbour of
	// a node that unconditionally broadcasts at boot. Listing a node
	// whose reception is conditional makes sharded coverage unsound
	// (the sub-space without the reception is explored by both halves).
	ShardableNodes []int

	// Symmetry declares the scenario's per-node asymmetries so symmetry
	// reduction (Scenario.WithReduction) can be used with node-aware
	// programs; see SymmetrySpec. Nil means: apply the automorphism
	// group automatically only if the program is node-uniform.
	Symmetry *SymmetrySpec
}
