package sde_test

import (
	"fmt"
	"maps"
	"testing"

	"sde"
)

// shardScenario builds the reference workload for sharding tests.
func shardScenario(t *testing.T, algo sde.Algorithm) sde.Scenario {
	t.Helper()
	s, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:       3,
		Algorithm: algo,
		Packets:   2,
		DropNodes: sde.DropRouteAndNeighbors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxShardBits() < 2 {
		t.Fatalf("MaxShardBits = %d, want >= 2 (both source neighbours armed)",
			s.MaxShardBits())
	}
	return s
}

func TestShardedMatchesUnsharded(t *testing.T) {
	for _, algo := range sde.Algorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			scenario := shardScenario(t, algo)
			ref, err := sde.RunScenario(scenario)
			if err != nil {
				t.Fatal(err)
			}
			for _, bits := range []int{0, 1, 2} {
				sharded, err := sde.RunScenarioSharded(scenario, bits)
				if err != nil {
					t.Fatal(err)
				}
				if len(sharded.Shards) != 1<<bits {
					t.Fatalf("bits=%d: shards = %d", bits, len(sharded.Shards))
				}
				// Shards partition the dscenario space exactly.
				if sharded.DScenarios().Cmp(ref.DScenarios()) != 0 {
					t.Errorf("bits=%d: dscenarios = %v, want %v",
						bits, sharded.DScenarios(), ref.DScenarios())
				}
				// Sharding can only lose sharing, never coverage.
				if sharded.States() < ref.States() {
					t.Errorf("bits=%d: states = %d below unsharded %d",
						bits, sharded.States(), ref.States())
				}
				if aborted, reason := sharded.Aborted(); aborted {
					t.Errorf("bits=%d: aborted: %s", bits, reason)
				}
			}
		})
	}
}

// TestShardedScenarioSetsEqual is the strong oracle: the union of the
// shards' exploded dscenario fingerprints must equal the unsharded set.
func TestShardedScenarioSetsEqual(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	refSet := explodeFingerprints(ref)
	sharded, err := sde.RunScenarioSharded(scenario, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, sh := range sharded.Shards {
		for fp := range explodeFingerprints(sh.Report) {
			if got[fp] {
				t.Fatalf("dscenario %x appears in two shards", fp)
			}
			got[fp] = true
		}
	}
	if len(got) != len(refSet) {
		t.Fatalf("sharded union has %d dscenarios, unsharded %d", len(got), len(refSet))
	}
	for fp := range refSet {
		if !got[fp] {
			t.Fatal("sharded union is missing an unsharded dscenario")
		}
	}
}

func explodeFingerprints(r *sde.Report) map[uint64]bool {
	out := map[uint64]bool{}
	for _, sc := range r.Result().Mapper.Explode(0) {
		h := uint64(14695981039346656037)
		for _, s := range sc {
			h ^= s.Fingerprint()
			h *= 1099511628211
		}
		out[h] = true
	}
	return out
}

func TestShardedViolationsFound(t *testing.T) {
	// The duplication bug must be found by the shard exploring the
	// failure branch, with a witness that still replays.
	scenario, err := sde.LineCollectScenario(sde.LineCollectOptions{
		K:         3,
		Algorithm: sde.SDS,
		Packets:   2,
		Failures: sde.FailurePlan{
			DropFirst:      map[int]bool{1: true},
			DuplicateFirst: map[int]bool{0: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := sde.RunScenarioSharded(scenario, 1)
	if err != nil {
		t.Fatal(err)
	}
	violations := sharded.Violations()
	if len(violations) == 0 {
		t.Fatal("sharded run missed the duplication bug")
	}
	found := false
	for _, sh := range sharded.Shards {
		for _, v := range sh.Report.Violations() {
			ok, _, err := sh.Report.ReplayViolation(v)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				found = true
			}
		}
	}
	if !found {
		t.Error("no shard violation replayed successfully")
	}
}

func TestShardedValidation(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	if _, err := sde.RunScenarioSharded(scenario, 50); err == nil {
		t.Error("more shard bits than armed nodes accepted")
	}
	if _, err := sde.RunScenarioSharded(scenario, -1); err == nil {
		t.Error("negative shard bits accepted")
	}
}

func TestShardedWallIsMakespan(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	sharded, err := sde.RunScenarioSharded(scenario, 1)
	if err != nil {
		t.Fatal(err)
	}
	makespan := sharded.Wall()
	for _, sh := range sharded.Shards {
		if sh.Report.Wall() > makespan {
			t.Error("a shard's wall time exceeds the reported makespan")
		}
	}
}

// TestAdaptiveSplittingDeterministic: a work-stealing run that splits
// aggressively must still explore exactly the unsharded dscenario set —
// the leaf partition varies with scheduling, the union never does.
func TestAdaptiveSplittingDeterministic(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	refSet := explodeFingerprints(ref)
	sharded, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
		ShardBits:         0,
		MaxSplitBits:      2,
		SplitThreshold:    1, // everything is a straggler: force splits
		Workers:           2,
		SharedSolverCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Sched.Splits == 0 {
		t.Error("SplitThreshold=1 run recorded no splits")
	}
	if sharded.Sched.Shards != len(sharded.Shards) {
		t.Errorf("Sched.Shards = %d, report has %d shards",
			sharded.Sched.Shards, len(sharded.Shards))
	}
	if sharded.DScenarios().Cmp(ref.DScenarios()) != 0 {
		t.Errorf("dscenarios = %v, want %v", sharded.DScenarios(), ref.DScenarios())
	}
	got := map[uint64]bool{}
	for _, sh := range sharded.Shards {
		for fp := range explodeFingerprints(sh.Report) {
			if got[fp] {
				t.Fatalf("dscenario %x appears in two shards", fp)
			}
			got[fp] = true
		}
	}
	if len(got) != len(refSet) {
		t.Fatalf("adaptive union has %d dscenarios, unsharded %d", len(got), len(refSet))
	}
	for fp := range refSet {
		if !got[fp] {
			t.Fatal("adaptive union is missing an unsharded dscenario")
		}
	}
}

// TestAdaptiveFindsSameViolations: the work-stealing scheduler finds the
// same violation set as a static sharded run and an unsharded run, and
// its witnesses replay. Violations are compared by (node, time, message)
// — state ids and witness models legitimately vary across partitionings.
func TestAdaptiveFindsSameViolations(t *testing.T) {
	scenario, err := sde.LineCollectScenario(sde.LineCollectOptions{
		K:         3,
		Algorithm: sde.SDS,
		Packets:   2,
		Failures: sde.FailurePlan{
			DropFirst:      map[int]bool{1: true},
			DuplicateFirst: map[int]bool{0: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	violationKeys := func(vs []*sde.Violation) map[string]int {
		keys := map[string]int{}
		for _, v := range vs {
			keys[fmt.Sprintf("n%d t%d %s", v.Node, v.Time, v.Msg)]++
		}
		return keys
	}
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	static, err := sde.RunScenarioSharded(scenario, 1)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
		MaxSplitBits:   1,
		SplitThreshold: 1,
		Workers:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := violationKeys(ref.Violations())
	if len(want) == 0 {
		t.Fatal("reference run found no violations")
	}
	for name, got := range map[string]map[string]int{
		"static":   violationKeys(static.Violations()),
		"adaptive": violationKeys(adaptive.Violations()),
	} {
		if !maps.Equal(got, want) {
			t.Errorf("%s violations = %v, want %v", name, got, want)
		}
	}
	for _, sh := range adaptive.Shards {
		for _, v := range sh.Report.Violations() {
			ok, _, err := sh.Report.ReplayViolation(v)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("adaptive shard %d violation did not replay", sh.Shard)
			}
		}
	}
}

// skewedScenario is a workload with real solver traffic and a skewed
// dscenario space: node 0 broadcasts once at boot, and every receiver
// forks depth symbolic branches on compound conditions (each fork costs
// two feasibility queries). Receivers are armed DropFirst and declared
// shardable, so the sub-spaces where drops occur are cheap (on_recv
// never runs) while the all-delivered sub-space pays 2^depth forks per
// receiver — the load imbalance adaptive splitting is built for.
func skewedScenario(t testing.TB, k, depth int, algo sde.Algorithm) sde.Scenario {
	pb := sde.NewProgramBuilder()
	boot := pb.Func("boot")
	boot.NodeID(sde.R1)
	boot.BrNZ(sde.R1, "done")
	boot.MovI(sde.R2, 0x100)
	boot.MovI(sde.R3, sde.BroadcastAddr)
	boot.Send(sde.R3, sde.R2, 1)
	boot.Label("done")
	boot.Ret()
	recv := pb.Func("on_recv")
	for i := 0; i < depth; i++ {
		recv.Sym(sde.R5, fmt.Sprintf("x%d", i), 8)
		recv.MulI(sde.R6, sde.R5, 3)
		recv.UltI(sde.R7, sde.R6, 100)
		recv.BrNZ(sde.R7, fmt.Sprintf("l%d", i))
		recv.Label(fmt.Sprintf("l%d", i))
	}
	recv.Ret()
	prog, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	receivers := make([]int, 0, k-1)
	for n := 1; n < k; n++ {
		receivers = append(receivers, n)
	}
	scenario, err := sde.CustomScenario("skewed", sde.CustomConfig{
		Topology:       sde.FullMesh(k),
		Program:        prog,
		Algorithm:      algo,
		HorizonTicks:   100,
		Failures:       sde.FailurePlan{DropFirst: sde.NodeSet(receivers)},
		ShardableNodes: receivers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scenario
}

// TestShardedSchedTelemetry: the scheduler reports coherent telemetry,
// including cross-shard solver-cache reuse on a workload with real
// solver traffic.
func TestShardedSchedTelemetry(t *testing.T) {
	scenario := skewedScenario(t, 3, 2, sde.SDS)
	if scenario.MaxShardBits() != 2 {
		t.Fatalf("MaxShardBits = %d, want 2", scenario.MaxShardBits())
	}
	sharded, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
		ShardBits:         2,
		Workers:           3,
		SharedSolverCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := sharded.Sched
	if sched.Workers != 3 {
		t.Errorf("Workers = %d, want 3", sched.Workers)
	}
	if len(sched.WorkerBusy) != 3 {
		t.Errorf("WorkerBusy has %d entries, want 3", len(sched.WorkerBusy))
	}
	if sched.Shards != 4 {
		t.Errorf("Shards = %d, want 4", sched.Shards)
	}
	if sched.Splits != 0 {
		t.Errorf("static run recorded %d splits", sched.Splits)
	}
	if sched.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
	for i, u := range sched.Utilization() {
		if u < 0 || u > 1 {
			t.Errorf("worker %d utilisation %v out of range", i, u)
		}
	}
	if sched.SharedLookups == 0 {
		t.Error("shared cache enabled but no lookups recorded")
	}
	if sched.SharedHits == 0 {
		t.Error("no cross-shard cache hits on four sibling shards")
	}
	if hr := sched.SharedHitRate(); hr <= 0 || hr > 1 {
		t.Errorf("SharedHitRate() = %v out of range", hr)
	}
}
