package sde_test

import (
	"testing"

	"sde"
)

// shardScenario builds the reference workload for sharding tests.
func shardScenario(t *testing.T, algo sde.Algorithm) sde.Scenario {
	t.Helper()
	s, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:       3,
		Algorithm: algo,
		Packets:   2,
		DropNodes: sde.DropRouteAndNeighbors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxShardBits() < 2 {
		t.Fatalf("MaxShardBits = %d, want >= 2 (both source neighbours armed)",
			s.MaxShardBits())
	}
	return s
}

func TestShardedMatchesUnsharded(t *testing.T) {
	for _, algo := range sde.Algorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			scenario := shardScenario(t, algo)
			ref, err := sde.RunScenario(scenario)
			if err != nil {
				t.Fatal(err)
			}
			for _, bits := range []int{0, 1, 2} {
				sharded, err := sde.RunScenarioSharded(scenario, bits)
				if err != nil {
					t.Fatal(err)
				}
				if len(sharded.Shards) != 1<<bits {
					t.Fatalf("bits=%d: shards = %d", bits, len(sharded.Shards))
				}
				// Shards partition the dscenario space exactly.
				if sharded.DScenarios().Cmp(ref.DScenarios()) != 0 {
					t.Errorf("bits=%d: dscenarios = %v, want %v",
						bits, sharded.DScenarios(), ref.DScenarios())
				}
				// Sharding can only lose sharing, never coverage.
				if sharded.States() < ref.States() {
					t.Errorf("bits=%d: states = %d below unsharded %d",
						bits, sharded.States(), ref.States())
				}
				if aborted, reason := sharded.Aborted(); aborted {
					t.Errorf("bits=%d: aborted: %s", bits, reason)
				}
			}
		})
	}
}

// TestShardedScenarioSetsEqual is the strong oracle: the union of the
// shards' exploded dscenario fingerprints must equal the unsharded set.
func TestShardedScenarioSetsEqual(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	refSet := explodeFingerprints(ref)
	sharded, err := sde.RunScenarioSharded(scenario, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, sh := range sharded.Shards {
		for fp := range explodeFingerprints(sh.Report) {
			if got[fp] {
				t.Fatalf("dscenario %x appears in two shards", fp)
			}
			got[fp] = true
		}
	}
	if len(got) != len(refSet) {
		t.Fatalf("sharded union has %d dscenarios, unsharded %d", len(got), len(refSet))
	}
	for fp := range refSet {
		if !got[fp] {
			t.Fatal("sharded union is missing an unsharded dscenario")
		}
	}
}

func explodeFingerprints(r *sde.Report) map[uint64]bool {
	out := map[uint64]bool{}
	for _, sc := range r.Result().Mapper.Explode(0) {
		h := uint64(14695981039346656037)
		for _, s := range sc {
			h ^= s.Fingerprint()
			h *= 1099511628211
		}
		out[h] = true
	}
	return out
}

func TestShardedViolationsFound(t *testing.T) {
	// The duplication bug must be found by the shard exploring the
	// failure branch, with a witness that still replays.
	scenario, err := sde.LineCollectScenario(sde.LineCollectOptions{
		K:         3,
		Algorithm: sde.SDS,
		Packets:   2,
		Failures: sde.FailurePlan{
			DropFirst:      map[int]bool{1: true},
			DuplicateFirst: map[int]bool{0: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := sde.RunScenarioSharded(scenario, 1)
	if err != nil {
		t.Fatal(err)
	}
	violations := sharded.Violations()
	if len(violations) == 0 {
		t.Fatal("sharded run missed the duplication bug")
	}
	found := false
	for _, sh := range sharded.Shards {
		for _, v := range sh.Report.Violations() {
			ok, _, err := sh.Report.ReplayViolation(v)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				found = true
			}
		}
	}
	if !found {
		t.Error("no shard violation replayed successfully")
	}
}

func TestShardedValidation(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	if _, err := sde.RunScenarioSharded(scenario, 50); err == nil {
		t.Error("more shard bits than armed nodes accepted")
	}
	if _, err := sde.RunScenarioSharded(scenario, -1); err == nil {
		t.Error("negative shard bits accepted")
	}
}

func TestShardedWallIsMakespan(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	sharded, err := sde.RunScenarioSharded(scenario, 1)
	if err != nil {
		t.Fatal(err)
	}
	makespan := sharded.Wall()
	for _, sh := range sharded.Shards {
		if sh.Report.Wall() > makespan {
			t.Error("a shard's wall time exceeds the reported makespan")
		}
	}
}
