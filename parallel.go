package sde

import (
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"
)

// The parallel SDE extension (paper §VI: "we plan to parallelize SDE's
// implementation ... we have to identify the sets of states which can be
// safely offloaded on other cores and thus can be independently
// executed"). The unit of independence used here is a partition of the
// dscenario space: pinning the first b symbolic failure decisions to
// fixed values yields 2^b disjoint sub-spaces that never exchange states,
// so each shard runs on a fully independent engine (own expression
// builder, solver, and state population) and the results merge by simple
// aggregation.

// MaxShardBits reports how many failure decisions of the scenario can be
// used for sharding: log2 of the maximum shard count.
func (s Scenario) MaxShardBits() int { return len(s.shardable) }

// ShardReport is the outcome of one shard of a sharded run.
type ShardReport struct {
	Shard  int
	Pin    map[string]uint64 // the failure decisions this shard fixes
	Report *Report
}

// ShardedReport aggregates a sharded scenario run.
type ShardedReport struct {
	Shards []ShardReport
}

// States returns the total number of final execution states across
// shards. Sharding trades sharing for parallelism, so the total is at
// least the unsharded count.
func (r *ShardedReport) States() int {
	n := 0
	for _, sh := range r.Shards {
		n += sh.Report.States()
	}
	return n
}

// DScenarios returns the total number of represented dscenarios — shards
// partition the space, so this equals the unsharded count.
func (r *ShardedReport) DScenarios() *big.Int {
	total := new(big.Int)
	for _, sh := range r.Shards {
		total.Add(total, sh.Report.DScenarios())
	}
	return total
}

// Violations returns all violations found across shards, in shard order.
func (r *ShardedReport) Violations() []*Violation {
	var out []*Violation
	for _, sh := range r.Shards {
		out = append(out, sh.Report.Violations()...)
	}
	return out
}

// Wall returns the longest shard wall time (the parallel makespan).
func (r *ShardedReport) Wall() time.Duration {
	var maxWall time.Duration
	for _, sh := range r.Shards {
		if w := sh.Report.Wall(); w > maxWall {
			maxWall = w
		}
	}
	return maxWall
}

// Aborted reports whether any shard hit a resource cap.
func (r *ShardedReport) Aborted() (bool, string) {
	for _, sh := range r.Shards {
		if aborted, reason := sh.Report.Aborted(); aborted {
			return true, fmt.Sprintf("shard %d: %s", sh.Shard, reason)
		}
	}
	return false, ""
}

// RunScenarioSharded runs the scenario split into 2^shardBits independent
// partitions, concurrently. The partitions are formed by pinning the
// symbolic drop decisions of shardBits *shardable* nodes — armed nodes
// that are radio neighbours of the traffic source, whose first reception
// (and hence their drop decision) materialises in every execution — to the
// bit pattern of the shard index. Every shard therefore explores a
// disjoint fraction of the dscenario space and their union is exactly the
// unsharded exploration. (Pinning a decision that might never materialise
// would replicate the sub-space in which it does not, double-counting
// coverage; built-in scenario constructors compute the safe set.)
//
// shardBits must not exceed the scenario's shardable node count, which
// MaxShardBits reports.
func RunScenarioSharded(s Scenario, shardBits int) (*ShardedReport, error) {
	if shardBits < 0 {
		return nil, fmt.Errorf("sde: negative shard bits")
	}
	armed := append([]int(nil), s.shardable...)
	sort.Ints(armed)
	if shardBits > len(armed) {
		return nil, fmt.Errorf("sde: %d shard bits but only %d shardable drop nodes",
			shardBits, len(armed))
	}
	nShards := 1 << shardBits

	reports := make([]ShardReport, nShards)
	errs := make([]error, nShards)
	var wg sync.WaitGroup
	for shard := 0; shard < nShards; shard++ {
		shard := shard
		wg.Add(1)
		go func() {
			defer wg.Done()
			pin := make(map[string]uint64, shardBits)
			for bit := 0; bit < shardBits; bit++ {
				name := fmt.Sprintf("drop_n%d_r0", armed[bit])
				pin[name] = uint64(shard>>uint(bit)) & 1
			}
			cfg := s.cfg
			cfg.Pin = pin
			shardScenario := s
			shardScenario.cfg = cfg
			shardScenario.desc = fmt.Sprintf("%s [shard %d/%d]", s.desc, shard, nShards)
			report, err := RunScenario(shardScenario)
			if err != nil {
				errs[shard] = err
				return
			}
			reports[shard] = ShardReport{Shard: shard, Pin: pin, Report: report}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sde: sharded run: %w", err)
		}
	}
	return &ShardedReport{Shards: reports}, nil
}
