package sde

import (
	"errors"
	"fmt"
	"math/big"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"sde/internal/solver"
)

// The parallel SDE extension (paper §VI: "we plan to parallelize SDE's
// implementation ... we have to identify the sets of states which can be
// safely offloaded on other cores and thus can be independently
// executed"). The unit of independence used here is a partition of the
// dscenario space: pinning b symbolic failure decisions to fixed values
// yields 2^b disjoint sub-spaces that never exchange states, so each
// shard runs on a fully independent engine (own expression builder,
// solver, and state population) and the results merge by simple
// aggregation.
//
// Scheduling is adaptive: a bounded worker pool pulls shard work items
// from a shared queue, and when a shard turns out to be a straggler —
// its live-state count or wall time crosses a threshold while other
// workers starve — the worker stops it mid-run and splits it in place,
// pinning one more drop decision to produce two child shards. Light
// regions of the space stay coarse (one cheap run), heavy regions
// subdivide until the pool is balanced, without anyone guessing the
// skew up front. An optional cross-shard solver cache lets concurrent
// shards reuse each other's constraint verdicts.

// MaxShardBits reports how many failure decisions of the scenario can be
// used for sharding: log2 of the maximum shard count.
func (s Scenario) MaxShardBits() int { return len(s.shardable) }

// ShardConfig parameterises RunScenarioShardedWith. The zero value runs
// the whole scenario as a single work item on a GOMAXPROCS-sized pool
// with adaptive splitting disabled.
type ShardConfig struct {
	// ShardBits pre-splits the dscenario space into 2^ShardBits uniform
	// initial shards. It must not exceed the scenario's MaxShardBits.
	ShardBits int

	// Workers bounds the worker pool (0 = GOMAXPROCS; negative values
	// are rejected). Unlike the naive one-goroutine-per-shard scheme,
	// shard count and parallelism are independent: thousands of shards
	// can drain through a small pool.
	Workers int

	// MaxSplitBits caps how many drop decisions a shard may pin in
	// total, i.e. how deep adaptive splitting can subdivide. Values
	// below ShardBits are raised to ShardBits (which disables
	// splitting); values above MaxShardBits are clamped down to it.
	MaxSplitBits int

	// SplitThreshold is the live-state count beyond which a running
	// shard is considered a straggler and eligible for splitting
	// (default 4096).
	SplitThreshold int

	// SplitAfter is the wall-time analogue of SplitThreshold: a shard
	// running longer than this is eligible for splitting (default 2s).
	SplitAfter time.Duration

	// SharedSolverCache backs all shards with one cross-shard solver
	// query cache. Shards share pin-independent query components (the
	// bulk of distributed test-case queries), so later shards skip SAT
	// work the earlier ones already did.
	SharedSolverCache bool

	// CheckpointDir, when non-empty, makes the sharded run durable: each
	// shard checkpoints into its own subdirectory (named by its pinned
	// bit string), and a rerun with the same directory resumes every
	// shard from its last snapshot — finished shards replay nothing. The
	// resumed run may use a different Workers count; the partition, not
	// the pool, defines the shards.
	CheckpointDir string

	// CheckpointEvery is the per-shard checkpoint interval in processed
	// events (0 = the engine default).
	CheckpointEvery int

	// DisableSpeculation turns the speculative-fork solver pipeline off
	// in every shard (see Scenario.WithoutSpeculation).
	DisableSpeculation bool

	// SpecWorkers is the per-shard solver worker count of the speculation
	// pipeline (0 = the engine default, one per CPU). In a sharded run the
	// shard pool and the per-shard solver pools multiply, so bounding this
	// to 1 or 2 avoids oversubscription on small machines. Negative values
	// are rejected.
	SpecWorkers int

	// DisableCompiledIR turns the basic-block compiled fast path off in
	// every shard (see Scenario.WithoutCompiledIR).
	DisableCompiledIR bool

	// EnableMerge turns ITE-based state merging on in every shard (see
	// Scenario.WithMerging). Off by default.
	EnableMerge bool

	// EnableReduce turns symmetry and partial-order reduction on in every
	// shard (see Scenario.WithReduction). Each shard's reducer keeps only
	// the automorphisms preserving its pinned decisions, so orbit
	// canonicalization stays inside the shard's sub-space; the aggregated
	// report dedupes the synthesized orbit twins across leaves. Off by
	// default.
	EnableReduce bool

	// DepthHorizon, when non-zero, adds exploration depth as a second
	// shard dimension: every work item suspends once its cumulative
	// processed-event count reaches the next multiple of the horizon and
	// live work remains, and its surviving frontier fans out into
	// HorizonFanout continuation items that re-enter the queue like any
	// other shard. A scenario with zero shardable bits but deep branching
	// then still spreads across the pool. The (DepthHorizon,
	// HorizonFanout) pair is part of the partition definition: two runs —
	// local or distributed — produce bit-identical reports iff they agree
	// on it, exactly as they must agree on ShardBits.
	DepthHorizon uint64

	// HorizonFanout is how many continuation slices one suspension
	// produces (default 2 when DepthHorizon is set; ignored otherwise).
	// It is clamped to the suspended frontier's independently resumable
	// unit count (COB: live dscenarios; COW/SDS: 1 — those frontiers
	// continue as a chain rather than a fan). Deliberately NOT derived
	// from Workers: the fan-out shapes the leaf partition, and the
	// partition must not depend on pool size.
	HorizonFanout int
}

const (
	defaultSplitThreshold = 4096
	defaultSplitAfter     = 2 * time.Second

	// defaultHorizonFanout is how many continuation slices one suspension
	// produces when DepthHorizon is set and HorizonFanout is not. Small
	// and fixed: each horizon generation doubles the parallelism, so a
	// deep run fans out geometrically without the fan-out ever depending
	// on pool or fleet size (which would break digest stability).
	defaultHorizonFanout = 2
)

// ShardReport is the outcome of one shard of a sharded run.
type ShardReport struct {
	Shard  int
	Pin    map[string]uint64 // the failure decisions this shard fixes
	Report *Report
}

// ShardedReport aggregates a sharded scenario run.
type ShardedReport struct {
	Shards []ShardReport

	// Sched is the scheduler's telemetry: worker utilisation, steal and
	// split counts, and cross-shard solver-cache reuse.
	Sched SchedStats
}

// States returns the total number of final execution states across
// shards. Sharding trades sharing for parallelism, so the total is at
// least the unsharded count.
func (r *ShardedReport) States() int {
	n := 0
	for _, sh := range r.Shards {
		n += sh.Report.States()
	}
	return n
}

// DScenarios returns the total number of represented dscenarios — shards
// partition the space, so this equals the unsharded count.
func (r *ShardedReport) DScenarios() *big.Int {
	total := new(big.Int)
	for _, sh := range r.Shards {
		total.Add(total, sh.Report.DScenarios())
	}
	return total
}

// Violations returns all violations found across shards, in shard order.
// Observed violations are always kept (the same assertion failing in two
// shards belongs to two disjoint sub-spaces); synthesized orbit twins
// from symmetry reduction are deduplicated across leaves — a shard's
// witness expansion covers whole orbits, so without the dedupe every
// leaf touching an orbit would re-report it.
func (r *ShardedReport) Violations() []*Violation {
	type vkey struct {
		node int
		time uint64
		msg  string
	}
	var out []*Violation
	seen := make(map[vkey]bool)
	for _, sh := range r.Shards {
		for _, v := range sh.Report.Violations() {
			if !v.Synthesized {
				out = append(out, v)
				seen[vkey{v.Node, v.Time, v.Msg}] = true
			}
		}
	}
	for _, sh := range r.Shards {
		for _, v := range sh.Report.Violations() {
			if !v.Synthesized {
				continue
			}
			k := vkey{v.Node, v.Time, v.Msg}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// Wall returns the longest shard wall time (the critical-path lower
// bound on the makespan; Sched.Elapsed is the realised makespan).
func (r *ShardedReport) Wall() time.Duration {
	var maxWall time.Duration
	for _, sh := range r.Shards {
		if w := sh.Report.Wall(); w > maxWall {
			maxWall = w
		}
	}
	return maxWall
}

// Aborted reports whether any shard hit a resource cap.
func (r *ShardedReport) Aborted() (bool, string) {
	for _, sh := range r.Shards {
		if aborted, reason := sh.Report.Aborted(); aborted {
			return true, fmt.Sprintf("shard %d: %s", sh.Shard, reason)
		}
	}
	return false, ""
}

// workItem identifies one sub-space of the dscenario partition: bit i of
// bits is the pinned value of the i-th shardable drop decision, depth
// says how many bits are pinned, and cont narrows the item along the
// depth dimension to one slice of a suspended ancestor's frontier. The
// set of completed items always forms a prefix-free cover of the
// two-dimensional space, so their union is exactly the unsharded
// exploration regardless of how splitting and suspension unfolded.
type workItem struct {
	depth  int
	bits   uint64
	cont   []ContStep // continuation path (empty for a plain bit shard)
	target uint64     // absolute event count of the next horizon (0 = none)
	parent []byte     // suspended ancestor frontier to slice-resume from
	origin int        // worker that enqueued it; -1 for the initial pre-split
}

type leafResult struct {
	item   workItem
	pin    map[string]uint64
	report *Report
}

// shardSched is the work-stealing pool: a shared LIFO queue drained by a
// fixed set of workers. "Stealing" here is work-sharing through the
// shared queue — a steal is counted whenever a worker executes an item
// that a different worker enqueued (i.e. one half of someone else's
// split).
type shardSched struct {
	scenario Scenario
	armed    []int
	cfg      ShardConfig // normalised: all defaults applied
	cache    *solver.SharedCache

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []workItem
	pending int // queued + in-flight items

	leaves      []leafResult
	errs        []error
	steals      int
	splits      int
	resumed     int
	suspensions int
	busy        []time.Duration
}

// exported converts the scheduler-internal work item to its public form
// (the one the exploration service leases over the wire).
func (it workItem) exported() ShardItem {
	return ShardItem{Depth: it.depth, Bits: it.bits, Cont: it.cont}
}

func (sc *shardSched) pinFor(item workItem) map[string]uint64 {
	return sc.scenario.shardPin(item.exported())
}

func bitLabel(item workItem) string { return item.exported().Label() }

// shardDirName names a work item's checkpoint subdirectory; see
// ShardItem.Dir.
func shardDirName(item workItem) string { return item.exported().Dir() }

// progressHook decides whether a running shard should stop and split: it
// must look like a straggler (states or wall time over threshold) while
// the queue is starving the pool. A full queue means splitting would
// only add overhead; a starved one means idle capacity is waiting for
// exactly this split.
func (sc *shardSched) progressHook(states int, elapsed time.Duration) bool {
	if states <= sc.cfg.SplitThreshold && elapsed < sc.cfg.SplitAfter {
		return false
	}
	sc.mu.Lock()
	starved := len(sc.queue) < sc.cfg.Workers
	sc.mu.Unlock()
	return starved
}

// runItem executes one shard run. Splittable items (depth below the
// cap) get the progress hook installed so the scheduler can cut them
// short — except continuation items: their pinned decisions already
// materialised inside the parent frontier, so pinning more bits cannot
// subdivide them (the depth dimension subdivides them instead). The
// fourth return is the suspended frontier when the run hit its horizon.
func (sc *shardSched) runItem(item workItem) (*Report, map[string]uint64, []byte, error) {
	pin := sc.pinFor(item)
	cfg := sc.scenario.cfg
	cfg.Pin = pin
	cfg.SharedSolverCache = sc.cache
	if item.depth < sc.cfg.MaxSplitBits && len(item.cont) == 0 {
		cfg.Progress = sc.progressHook
	}
	cfg.CheckpointEvery = sc.cfg.CheckpointEvery
	cfg.EventBudget = item.target
	cfg.DisableSpeculation = sc.cfg.DisableSpeculation
	cfg.SpecWorkers = sc.cfg.SpecWorkers
	cfg.DisableCompiledIR = cfg.DisableCompiledIR || sc.cfg.DisableCompiledIR
	cfg.EnableMerge = cfg.EnableMerge || sc.cfg.EnableMerge
	cfg.EnableReduce = cfg.EnableReduce || sc.cfg.EnableReduce
	shard := sc.scenario
	shard.cfg = cfg
	shard.desc = fmt.Sprintf("%s [shard %s]", sc.scenario.desc, bitLabel(item))
	dir := ""
	if sc.cfg.CheckpointDir != "" {
		dir = filepath.Join(sc.cfg.CheckpointDir, shardDirName(item))
	}
	report, suspend, err := runShardItem(shard, dir, item.cont, item.parent)
	if err != nil {
		return nil, nil, nil, err
	}
	// Scrub the run-time hooks from the stored scenario: a replay
	// through this report must not be stopped by the (now stale)
	// scheduler hook or event budget, write into the shared cache, or
	// overwrite the shard's checkpoint.
	scrubRunHooks(report)
	return report, pin, suspend, nil
}

func (sc *shardSched) worker(id int) {
	for {
		sc.mu.Lock()
		for len(sc.queue) == 0 && sc.pending > 0 {
			sc.cond.Wait()
		}
		if len(sc.queue) == 0 {
			sc.mu.Unlock()
			return
		}
		item := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		if item.origin >= 0 && item.origin != id {
			sc.steals++
		}
		sc.mu.Unlock()

		start := time.Now()
		report, pin, suspend, err := sc.runItem(item)
		elapsed := time.Since(start)

		sc.mu.Lock()
		sc.busy[id] += elapsed
		if report != nil && report.Resumed() {
			sc.resumed++
		}
		switch {
		case err != nil:
			sc.errs = append(sc.errs,
				fmt.Errorf("shard %s: %w", bitLabel(item), err))
		case report.res.Stopped:
			// Straggler: replace it with its two halves, one more drop
			// decision pinned. The partial run is discarded — its states
			// are not a sound cover of the sub-space.
			sc.splits++
			for b := uint64(0); b <= 1; b++ {
				child := workItem{
					depth:  item.depth + 1,
					bits:   item.bits | b<<uint(item.depth),
					target: item.target,
					origin: id,
				}
				sc.queue = append(sc.queue, child)
				sc.pending++
				sc.cond.Signal()
			}
		case report.res.Suspended:
			// Depth horizon: fan the surviving frontier out as continuation
			// items. The fan-out is the configured one clamped to what the
			// frontier supports (COW/SDS suspend as a single unit and
			// continue as a chain) — never the worker count, which must not
			// shape the partition.
			sc.suspensions++
			f := sc.cfg.HorizonFanout
			if u := report.res.SuspendUnits; f > u {
				f = u
			}
			if f < 1 {
				f = 1
			}
			target := report.res.Events + sc.cfg.DepthHorizon
			for seg := 0; seg < f; seg++ {
				cont := make([]ContStep, len(item.cont)+1)
				copy(cont, item.cont)
				cont[len(item.cont)] = ContStep{Seg: seg, Of: f}
				child := workItem{
					depth:  item.depth,
					bits:   item.bits,
					cont:   cont,
					target: target,
					parent: suspend,
					origin: id,
				}
				sc.queue = append(sc.queue, child)
				sc.pending++
				sc.cond.Signal()
			}
		default:
			sc.leaves = append(sc.leaves, leafResult{item: item, pin: pin, report: report})
		}
		sc.pending--
		if sc.pending == 0 {
			sc.cond.Broadcast()
		}
		sc.mu.Unlock()
	}
}

// RunScenarioShardedWith runs the scenario partitioned across a worker
// pool according to cfg. The partitions are formed by pinning the
// symbolic drop decisions of *shardable* nodes — armed nodes that are
// radio neighbours of the traffic source, whose first reception (and
// hence their drop decision) materialises in every execution — so every
// shard explores a disjoint fraction of the dscenario space and their
// union is exactly the unsharded exploration. (Pinning a decision that
// might never materialise would replicate the sub-space in which it does
// not, double-counting coverage; built-in scenario constructors compute
// the safe set, and CustomConfig.ShardableNodes declares it for custom
// workloads.)
//
// Shard errors do not cancel the run; every failed shard's error is
// collected and the joined aggregate returned.
func RunScenarioShardedWith(s Scenario, cfg ShardConfig) (*ShardedReport, error) {
	if cfg.ShardBits < 0 {
		return nil, fmt.Errorf("sde: negative shard bits")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sde: Workers must be >= 0 (got %d); 0 means one per CPU", cfg.Workers)
	}
	if cfg.SpecWorkers < 0 {
		return nil, fmt.Errorf("sde: SpecWorkers must be >= 0 (got %d); 0 means the engine default", cfg.SpecWorkers)
	}
	armed := append([]int(nil), s.shardable...)
	sort.Ints(armed)
	if cfg.ShardBits > len(armed) {
		return nil, fmt.Errorf("sde: %d shard bits but only %d shardable drop nodes",
			cfg.ShardBits, len(armed))
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSplitBits < cfg.ShardBits {
		cfg.MaxSplitBits = cfg.ShardBits
	}
	if cfg.MaxSplitBits > len(armed) {
		cfg.MaxSplitBits = len(armed)
	}
	if cfg.SplitThreshold <= 0 {
		cfg.SplitThreshold = defaultSplitThreshold
	}
	if cfg.SplitAfter <= 0 {
		cfg.SplitAfter = defaultSplitAfter
	}
	if cfg.HorizonFanout < 0 {
		return nil, fmt.Errorf("sde: HorizonFanout must be >= 0 (got %d); 0 means the default", cfg.HorizonFanout)
	}
	if cfg.HorizonFanout > maxContFanout {
		return nil, fmt.Errorf("sde: HorizonFanout %d exceeds the maximum %d", cfg.HorizonFanout, maxContFanout)
	}
	if cfg.DepthHorizon == 0 {
		cfg.HorizonFanout = 0
	} else if cfg.HorizonFanout == 0 {
		cfg.HorizonFanout = defaultHorizonFanout
	}

	sc := &shardSched{
		scenario: s,
		armed:    armed,
		cfg:      cfg,
		busy:     make([]time.Duration, cfg.Workers),
	}
	sc.cond = sync.NewCond(&sc.mu)
	if cfg.SharedSolverCache {
		sc.cache = solver.NewSharedCache()
	}
	for shard := 0; shard < 1<<cfg.ShardBits; shard++ {
		sc.queue = append(sc.queue, workItem{
			depth:  cfg.ShardBits,
			bits:   uint64(shard),
			target: cfg.DepthHorizon,
			origin: -1,
		})
	}
	sc.pending = len(sc.queue)

	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < cfg.Workers; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc.worker(id)
		}()
	}
	wg.Wait()

	if len(sc.errs) > 0 {
		return nil, fmt.Errorf("sde: sharded run: %w", errors.Join(sc.errs...))
	}

	sched := SchedStats{
		Workers:     cfg.Workers,
		Steals:      sc.steals,
		Splits:      sc.splits,
		Resumed:     sc.resumed,
		Suspensions: sc.suspensions,
		WorkerBusy:  sc.busy,
		Elapsed:     time.Since(start),
	}
	if sc.cache != nil {
		st := sc.cache.Stats()
		sched.SharedLookups = st.Lookups
		sched.SharedHits = st.Hits
	}
	return finalizeSharded(s, sc.leaves, sched), nil
}

// finalizeSharded orders completed leaves and aggregates their telemetry
// into the final report. It is shared between the in-process scheduler
// and AssembleSharded, so a distributed run's report is assembled exactly
// like a local one.
func finalizeSharded(s Scenario, leaves []leafResult, sched SchedStats) *ShardedReport {
	// Order the leaves deterministically — lexicographically by pinned
	// bit string, LSB (first shardable decision) first, then by
	// continuation path — so shard indices are stable across scheduling
	// interleavings. Within one (depth, bits) base the continuation
	// paths are prefix-free (a valid cover), so element-wise (seg, of)
	// comparison with shorter-first tie-break is a total order.
	sort.Slice(leaves, func(i, j int) bool {
		a, b := leaves[i].item, leaves[j].item
		n := a.depth
		if b.depth < n {
			n = b.depth
		}
		for bit := 0; bit < n; bit++ {
			ab := (a.bits >> uint(bit)) & 1
			bb := (b.bits >> uint(bit)) & 1
			if ab != bb {
				return ab < bb
			}
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		m := len(a.cont)
		if len(b.cont) < m {
			m = len(b.cont)
		}
		for k := 0; k < m; k++ {
			if a.cont[k].Seg != b.cont[k].Seg {
				return a.cont[k].Seg < b.cont[k].Seg
			}
			if a.cont[k].Of != b.cont[k].Of {
				return a.cont[k].Of < b.cont[k].Of
			}
		}
		return len(a.cont) < len(b.cont)
	})
	shards := make([]ShardReport, len(leaves))
	for i, leaf := range leaves {
		leaf.report.scenario.desc = fmt.Sprintf("%s [shard %d/%d]",
			s.desc, i, len(leaves))
		shards[i] = ShardReport{Shard: i, Pin: leaf.pin, Report: leaf.report}
	}
	sched.Shards = len(shards)
	for _, leaf := range leaves {
		st := leaf.report.res.SolverStats
		sched.IncrementalSolves += st.IncSolves
		sched.SubsumptionHits += st.SubsumptionHits
		sched.EncodeSkips += st.EncodeSkips
		sched.QueriesSliced += st.SlicedQueries
		sched.GatesElided += st.GatesElided
		sp := leaf.report.res.Spec
		sched.SpecSubmitted += sp.Submitted
		sched.SpecSolves += sp.Solves
		sched.SpecElided += sp.Elided
		sched.SpecRewinds += sp.Rewinds
		vmst := leaf.report.res.VM
		sched.FastBlocks += vmst.FastBlocks
		sched.SlowBlocks += vmst.SlowBlocks
		sched.FoldedInstrs += vmst.FoldedInstrs
		mg := leaf.report.res.Merge
		sched.MergeMerges += mg.Merges
		sched.MergeCandidates += mg.Candidates
		sched.MergeRejects += mg.Rejects
		rd := leaf.report.res.Reduce
		sched.ReduceChecks += rd.Checks
		sched.ReducePins += rd.Pins
	}
	return &ShardedReport{Shards: shards, Sched: sched}
}

// RunScenarioSharded runs the scenario split into 2^shardBits static
// partitions on a GOMAXPROCS-sized worker pool: RunScenarioShardedWith
// with adaptive splitting and the shared solver cache disabled.
//
// shardBits must not exceed the scenario's shardable node count, which
// MaxShardBits reports.
func RunScenarioSharded(s Scenario, shardBits int) (*ShardedReport, error) {
	return RunScenarioShardedWith(s, ShardConfig{ShardBits: shardBits})
}
