#!/usr/bin/env bash
# End-to-end gauntlet for the exploration service: boot a coordinator and
# two real worker processes, submit a job over the HTTP API, SIGKILL one
# worker mid-run, and require the final report digest to be bit-identical
# to an in-process sharded run of the same spec.
#
# Phase 2 exercises the second shard dimension: a deepchain job with zero
# shardable decision sites is spread purely by depth-horizon continuation
# leases; the lone worker is SIGKILLed after taking a continuation lease
# and a fresh worker must finish the job with the in-process oracle's
# digest.
#
# Usage: scripts/service_e2e.sh [logdir]
# Exit 0 on success. Logs land in $logdir (default ./e2e-logs).
set -u -o pipefail

LOGDIR="${1:-e2e-logs}"
mkdir -p "$LOGDIR"
BIN="$LOGDIR/bin"
WORK="$LOGDIR/work"
# Worker checkpoints only compose within one run: a worker restarted
# with a stale workdir would resume leases from another build's
# snapshots. Start every gauntlet from a clean slate.
rm -rf "$WORK"
mkdir -p "$BIN" "$WORK"

SPEC='{"workload":"collect","topology":"grid:3","packets":2,"drops":"route+neighbors"}'
SHARD_BITS=2
TEST_CASES=8
COORD_ADDR=127.0.0.1:7117
HTTP_ADDR=127.0.0.1:8117
API="http://$HTTP_ADDR/api/v1"

say()  { echo "service-e2e: $*"; }
fail() { echo "service-e2e: FAIL: $*" >&2; exit 1; }

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

say "building binaries"
go build -o "$BIN/sde-serve" ./cmd/sde-serve || fail "building sde-serve"
go build -o "$BIN/sde-worker" ./cmd/sde-worker || fail "building sde-worker"

say "computing in-process oracle digest"
ORACLE=$("$BIN/sde-serve" -oracle "$SPEC" -oracle-bits $SHARD_BITS -oracle-testcases $TEST_CASES) \
  || fail "oracle run"
say "oracle digest: $ORACLE"

say "booting coordinator"
"$BIN/sde-serve" -listen "$COORD_ADDR" -http "$HTTP_ADDR" -lease-ttl 5s \
  >"$LOGDIR/coordinator.log" 2>&1 &
PIDS+=($!)

# Wait for the job API to come up.
for _ in $(seq 1 50); do
  curl -sf "http://$HTTP_ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$HTTP_ADDR/healthz" >/dev/null || fail "coordinator did not come up"

say "booting two workers (w0 will be SIGKILLed mid-run)"
# w0 checkpoints every event so killing it mid-lease provably interrupts
# in-progress work; -crash-after-checkpoints makes the timing
# deterministic: the process dies abruptly right after its lease's third
# durable checkpoint, exactly like a SIGKILL at the worst moment.
"$BIN/sde-worker" -connect "$COORD_ADDR" -name w0 -workdir "$WORK/w0" \
  -checkpoint-every 1 -crash-after-checkpoints 3 -heartbeat 50ms \
  >"$LOGDIR/worker-w0.log" 2>&1 &
W0=$!
PIDS+=($W0)
"$BIN/sde-worker" -connect "$COORD_ADDR" -name w1 -workdir "$WORK/w1" \
  -heartbeat 50ms -retry 200ms \
  >"$LOGDIR/worker-w1.log" 2>&1 &
PIDS+=($!)

say "submitting job"
SUBMIT=$(curl -sf -X POST "$API/jobs" \
  -d "{\"spec\":$SPEC,\"shard_bits\":$SHARD_BITS,\"test_cases\":$TEST_CASES}") \
  || fail "job submission"
JOB=$(echo "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || fail "no job id in response: $SUBMIT"
say "job id: $JOB"

say "waiting for w0 to crash (exit code 3)"
CRASHED=0
for _ in $(seq 1 100); do
  if ! kill -0 "$W0" 2>/dev/null; then CRASHED=1; break; fi
  sleep 0.1
done
if [ "$CRASHED" = 1 ]; then
  wait "$W0"
  RC=$?
  say "w0 exited with code $RC"
  [ "$RC" = 3 ] || fail "w0 exited with $RC, want 3 (injected crash)"
  # Belt and braces: make absolutely sure nothing of w0 lingers.
  kill -9 "$W0" 2>/dev/null || true
else
  fail "w0 never crashed; job too small or crash hook broken"
fi

say "waiting for the job to finish on the surviving worker"
STATE=""
for _ in $(seq 1 300); do
  STATUS=$(curl -sf "$API/jobs/$JOB") || fail "status poll"
  STATE=$(echo "$STATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
  case "$STATE" in
    done|failed|cancelled) break ;;
  esac
  sleep 0.2
done
[ "$STATE" = done ] || fail "job ended in state '$STATE': $STATUS"

DIGEST=$(echo "$STATUS" | sed -n 's/.*"digest": *"\([^"]*\)".*/\1/p')
say "distributed digest: $DIGEST"
[ -n "$DIGEST" ] || fail "no digest in status: $STATUS"
[ "$DIGEST" = "$ORACLE" ] || fail "digest mismatch: distributed $DIGEST != in-process $ORACLE"

say "checking the report endpoint agrees"
REPORT_DIGEST=$(curl -sf "$API/jobs/$JOB/report" | sed -n 's/.*"digest": *"\([^"]*\)".*/\1/p' | head -1)
[ "$REPORT_DIGEST" = "$ORACLE" ] || fail "report digest $REPORT_DIGEST != oracle $ORACLE"

say "checking metrics recorded the crash recovery"
METRICS=$(curl -sf "http://$HTTP_ADDR/metrics") || fail "metrics fetch"
echo "$METRICS" > "$LOGDIR/metrics.txt"
REQUEUES=$(echo "$METRICS" | sed -n 's/^sde_lease_requeues_total{reason="disconnect"} *//p')
[ -n "$REQUEUES" ] && [ "$REQUEUES" -ge 1 ] 2>/dev/null \
  || fail "expected >= 1 disconnect requeue, got '$REQUEUES'"
echo "$METRICS" | grep -q '^sde_results_total' || fail "no results recorded in metrics"

say "PASS phase 1: report survived a worker SIGKILL bit-identical (digest $DIGEST, $REQUEUES requeue(s))"

# ---------------------------------------------------------------------------
# Phase 2: depth-horizon partitioning. The deepchain workload has zero
# shardable decision sites (MaxShardBits() == 0), so without a depth
# horizon the whole job would be a single lease no fleet can share.
# ---------------------------------------------------------------------------

say "phase 2: depth-horizon partitioning on a zero-shardable-bits job"

DSPEC='{"workload":"deepchain","topology":"line:6","algorithm":"cob","ticks":48,"iters":512}'
HORIZON=400
FANOUT=4

# The surviving phase-1 worker would otherwise drain the new job; this
# phase wants full control over who holds the continuation leases.
kill "${PIDS[2]}" 2>/dev/null || true
sleep 0.3

DORACLE=$("$BIN/sde-serve" -oracle "$DSPEC" -oracle-bits 0 -oracle-testcases $TEST_CASES \
  -oracle-horizon $HORIZON -oracle-fanout $FANOUT) || fail "depth oracle run"
say "depth oracle digest: $DORACLE"

"$BIN/sde-worker" -connect "$COORD_ADDR" -name d0 -workdir "$WORK/d0" \
  -checkpoint-every 1 -heartbeat 50ms -retry 50ms \
  >"$LOGDIR/worker-d0.log" 2>&1 &
D0=$!
PIDS+=($D0)

say "submitting depth-partitioned job"
DSUBMIT=$(curl -sf -X POST "$API/jobs" \
  -d "{\"spec\":$DSPEC,\"test_cases\":$TEST_CASES,\"depth_horizon\":$HORIZON,\"horizon_fanout\":$FANOUT}") \
  || fail "depth job submission"
DJOB=$(echo "$DSUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$DJOB" ] || fail "no job id in response: $DSUBMIT"
say "depth job id: $DJOB"

say "waiting for d0 to take a continuation lease, then SIGKILLing it"
CONTS=""
for _ in $(seq 1 200); do
  CONTS=$(curl -sf "http://$HTTP_ADDR/metrics" \
    | sed -n 's/^sde_continuation_leases_total *//p')
  [ -n "$CONTS" ] && [ "$CONTS" -ge 1 ] 2>/dev/null && break
  sleep 0.05
done
[ -n "$CONTS" ] && [ "$CONTS" -ge 1 ] 2>/dev/null \
  || fail "no continuation lease was ever granted (horizon never fired?)"
kill -9 "$D0" 2>/dev/null || true
say "d0 SIGKILLed after $CONTS continuation lease(s)"

say "booting replacement worker d1"
"$BIN/sde-worker" -connect "$COORD_ADDR" -name d1 -workdir "$WORK/d1" \
  -heartbeat 50ms -retry 50ms \
  >"$LOGDIR/worker-d1.log" 2>&1 &
PIDS+=($!)

say "waiting for the depth job to finish"
DSTATE=""
for _ in $(seq 1 600); do
  DSTATUS=$(curl -sf "$API/jobs/$DJOB") || fail "depth status poll"
  DSTATE=$(echo "$DSTATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
  case "$DSTATE" in
    done|failed|cancelled) break ;;
  esac
  sleep 0.2
done
[ "$DSTATE" = done ] || fail "depth job ended in state '$DSTATE': $DSTATUS"

DDIGEST=$(echo "$DSTATUS" | sed -n 's/.*"digest": *"\([^"]*\)".*/\1/p')
say "depth-partitioned digest: $DDIGEST"
[ -n "$DDIGEST" ] || fail "no digest in depth status: $DSTATUS"
[ "$DDIGEST" = "$DORACLE" ] \
  || fail "depth digest mismatch: distributed $DDIGEST != in-process $DORACLE"

say "checking metrics recorded the depth dimension"
DMETRICS=$(curl -sf "http://$HTTP_ADDR/metrics") || fail "metrics fetch"
echo "$DMETRICS" > "$LOGDIR/metrics-depth.txt"
SUSP=$(echo "$DMETRICS" | sed -n 's/^sde_lease_suspensions_total *//p')
[ -n "$SUSP" ] && [ "$SUSP" -ge 1 ] 2>/dev/null \
  || fail "expected >= 1 lease suspension, got '$SUSP'"
BLOBS=$(echo "$DMETRICS" | sed -n 's/^sde_continuation_blobs *//p')
[ -n "$BLOBS" ] && [ "$BLOBS" -eq 0 ] 2>/dev/null \
  || fail "continuation blobs still held after job done: '$BLOBS'"

say "PASS phase 2: depth-partitioned job survived a SIGKILL mid-continuation bit-identical (digest $DDIGEST, $SUSP suspension(s))"
say "PASS"
