#!/usr/bin/env bash
# bench_summary.sh — aggregate BENCH_*.json artifacts into one markdown
# table. Each bench document carries a `benchmark` name, a `generated`
# timestamp, and one or two top-level headline ratios (speedup,
# frontier_reduction, state_reduction, ...); the table shows those
# ratios side by side so a CI run's step summary answers "what do all
# the layers buy right now" at a glance.
#
# Usage:
#   scripts/bench_summary.sh [BENCH_a.json BENCH_b.json ...]
#
# With no arguments every BENCH_*.json in the current directory is
# summarised. Output is GitHub-flavoured markdown on stdout; in CI it is
# appended to $GITHUB_STEP_SUMMARY.
set -euo pipefail

command -v jq >/dev/null 2>&1 || {
  echo "bench_summary.sh: jq is required" >&2
  exit 1
}

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  for f in BENCH_*.json; do
    [ -e "$f" ] && files+=("$f")
  done
fi
if [ ${#files[@]} -eq 0 ]; then
  echo "bench_summary.sh: no BENCH_*.json files found" >&2
  exit 1
fi

echo "## Benchmark summary"
echo
echo "| artifact | benchmark | reps | generated | headline |"
echo "|---|---|---|---|---|"
for f in "${files[@]}"; do
  jq -r --arg file "$f" '
    # Headline metrics are the top-level numeric ratios; sweep
    # parameters are excluded by name.
    [ to_entries[]
      | select(.value | type == "number")
      | select(.key | IN("reps", "depth", "queries", "pairs",
                         "activations", "width") | not)
      | "\(.key) \(.value * 100 | round / 100)"
    ] as $headline
    | "| \($file) | \(.benchmark) | \(.reps) | \(.generated | split("T")[0]) | \($headline | join("; ")) |"
  ' "$f"
done
